"""Per-function control-flow graphs for the amlint dataflow rules.

A :class:`CFG` has one node per *statement* plus a handful of synthetic
nodes (entry, the two exits, exception dispatchers, ``with`` teardown).
Statement granularity is what the resource-lifecycle and protocol-state
rules need: "every path from the ``os.open`` to function exit passes a
``close``" is a question about statement orderings, not basic blocks.

Edges carry a kind:

- ``NORMAL`` — ordinary fall-through, branch, or loop edge;
- ``EXC`` — the statement raised.  Every statement that can plausibly
  raise gets one exception edge to the innermost enclosing handler
  context: the ``try``'s dispatch node, the ``finally`` block, the
  ``with`` teardown node, or the function's :attr:`CFG.raise_exit`.

Two exit nodes keep normal and exceptional termination distinct:
:attr:`CFG.exit` is reached by falling off the end or ``return``;
:attr:`CFG.raise_exit` by an exception that escapes the function.  A
"must release on every path" rule checks both.

Compound statements are represented by a *header* node that evaluates
only the header expression (an ``if``'s test, a ``for``'s iterable, a
``with``'s context expressions); their bodies are separate nodes.
:meth:`CFGNode.expressions` returns exactly the expressions evaluated
*at* that node so dataflow transfer functions never double-count a
body.

Deliberate approximations, all conservative for may-analyses:

- every statement may raise (so exception paths are never missed);
- a ``finally`` block is built once and its out-edges fan to every
  continuation its in-edges could want (normal fall-through, exception
  re-raise, ``return``/``break``/``continue`` targets), which adds
  infeasible paths but never hides a feasible one;
- an ``except E:`` handler list without a bare/``BaseException`` arm
  keeps a propagation edge for the unmatched exception;
- ``with`` desugars to header -> body -> teardown, the teardown node
  reachable from both normal completion and a raise in the body —
  rules treat it as the point where ``__exit__`` releases the managed
  resources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: edge kinds.
NORMAL = "normal"
EXC = "exc"

#: node kinds.
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise_exit"
STMT = "stmt"
DISPATCH = "dispatch"      # synthetic: try/except handler selection
WITH_EXIT = "with_exit"    # synthetic: __exit__ of a with statement

FunctionNode = ast.FunctionDef


@dataclass
class CFGNode:
    """One control-flow point: a statement or a synthetic marker."""

    id: int
    kind: str
    #: the owning statement (None for entry/exit nodes).  For compound
    #: statements this is the *header*: only :meth:`expressions` is
    #: evaluated here, never the body.
    stmt: Optional[ast.stmt] = None
    #: (target node id, edge kind) out-edges.
    succ: List[Tuple[int, str]] = field(default_factory=list)
    #: for WITH_EXIT nodes: the ``withitems`` whose context managers
    #: are released here.
    items: Tuple[ast.withitem, ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def expressions(self) -> List[ast.expr]:
        """The expressions evaluated *at* this node (bodies excluded)."""
        stmt = self.stmt
        if stmt is None:
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []  # a def/class statement only binds a name
        if isinstance(stmt, ast.Return):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, ast.Raise):
            return [e for e in (stmt.exc, stmt.cause) if e is not None]
        return [stmt]  # simple statements evaluate themselves

    def walk_expressions(self) -> Iterator[ast.AST]:
        """``ast.walk`` over everything evaluated at this node."""
        for expr in self.expressions():
            yield from ast.walk(expr)


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: FunctionNode
    nodes: Dict[int, CFGNode]
    entry: int
    exit: int
    raise_exit: int

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    def successors(self, node_id: int) -> List[Tuple[int, str]]:
        return self.nodes[node_id].succ

    def predecessors(self, node_id: int) -> List[Tuple[int, str]]:
        return [(n.id, kind) for n in self.nodes.values()
                for (t, kind) in n.succ if t == node_id]

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes.values() if n.stmt is not None]


class _LoopFrame:
    """break/continue targets of the innermost loop."""

    def __init__(self, header: int, after: int) -> None:
        self.header = header
        self.after = after


class _Builder:
    """Recursive CFG construction with an explicit handler context.

    ``exc_target`` is the node an exception raised "here" flows to —
    the innermost try's dispatch node, a finally block's entry, a with
    teardown, or the function's raise exit.  ``return`` statements jump
    to ``return_target`` (the exit, or the innermost finally).
    """

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: Dict[int, CFGNode] = {}
        self._next = 0
        self.entry = self._new(ENTRY)
        self.exit = self._new(EXIT)
        self.raise_exit = self._new(RAISE_EXIT)

    # -- plumbing ------------------------------------------------------------

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None,
             items: Tuple[ast.withitem, ...] = ()) -> int:
        node = CFGNode(self._next, kind, stmt, items=items)
        self.nodes[self._next] = node
        self._next += 1
        return node.id

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.nodes[src].succ:
            self.nodes[src].succ.append((dst, kind))

    # -- statement sequences -------------------------------------------------

    def build(self) -> CFG:
        last = self._seq(self.func.body, self.entry, self.raise_exit,
                         self.exit, None)
        for src in last:
            self._edge(src, self.exit)
        return CFG(self.func, self.nodes, self.entry, self.exit,
                   self.raise_exit)

    def _seq(self, stmts: Sequence[ast.stmt], pred: int, exc: int,
             return_to: int, loop: Optional[_LoopFrame],
             preds: Optional[List[int]] = None) -> List[int]:
        """Wire ``stmts`` after ``pred`` (or ``preds``); returns the
        dangling nodes whose fall-through leaves the sequence."""
        dangling = list(preds) if preds is not None else [pred]
        for stmt in stmts:
            if not dangling:
                break  # unreachable code after return/raise/break
            dangling = self._stmt(stmt, dangling, exc, return_to, loop)
        return dangling

    def _stmt(self, stmt: ast.stmt, preds: List[int], exc: int,
              return_to: int, loop: Optional[_LoopFrame]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, exc, return_to, loop)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, exc, return_to)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, exc, return_to, loop)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, exc, return_to, loop)

        node = self._new(STMT, stmt)
        for p in preds:
            self._edge(p, node)
        if isinstance(stmt, ast.Return):
            self._edge(node, exc, EXC)  # the value expression may raise
            self._edge(node, return_to)
            return []
        if isinstance(stmt, ast.Raise):
            self._edge(node, exc, EXC)
            return []
        if isinstance(stmt, ast.Break):
            if loop is not None:
                self._edge(node, loop.after)
            return []
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                self._edge(node, loop.header)
            return []
        if not isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                                 ast.Import, ast.ImportFrom,
                                 ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            self._edge(node, exc, EXC)
        return [node]

    # -- compound statements -------------------------------------------------

    def _if(self, stmt: ast.If, preds: List[int], exc: int,
            return_to: int, loop: Optional[_LoopFrame]) -> List[int]:
        header = self._new(STMT, stmt)
        for p in preds:
            self._edge(p, header)
        self._edge(header, exc, EXC)
        out = self._seq(stmt.body, header, exc, return_to, loop)
        if stmt.orelse:
            out += self._seq(stmt.orelse, header, exc, return_to, loop)
        else:
            out.append(header)
        return out

    def _loop(self, stmt: ast.stmt, preds: List[int], exc: int,
              return_to: int) -> List[int]:
        header = self._new(STMT, stmt)
        for p in preds:
            self._edge(p, header)
        self._edge(header, exc, EXC)
        # A placeholder "after" collector: break edges land here, as
        # does the loop-not-taken edge; it is returned as the single
        # dangling continuation.
        after = self._new(STMT, None)
        self.nodes[after].kind = DISPATCH  # synthetic join, no stmt
        frame = _LoopFrame(header, after)
        body = stmt.body if hasattr(stmt, "body") else []
        out = self._seq(body, header, exc, return_to, frame)
        for src in out:
            self._edge(src, header)  # back edge
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            done = self._seq(orelse, header, exc, return_to, None)
            for src in done:
                self._edge(src, after)
        else:
            self._edge(header, after)
        return [after]

    def _with(self, stmt: ast.stmt, preds: List[int], exc: int,
              return_to: int, loop: Optional[_LoopFrame]) -> List[int]:
        items = tuple(stmt.items)  # type: ignore[attr-defined]
        header = self._new(STMT, stmt, items=items)
        for p in preds:
            self._edge(p, header)
        # The context expression itself may raise -- before __enter__
        # succeeded, so straight to the enclosing handler.
        self._edge(header, exc, EXC)
        teardown = self._new(WITH_EXIT, stmt, items=items)
        # __exit__ runs on both completion and body exceptions; after
        # an exceptional teardown the exception continues outward.
        body = stmt.body  # type: ignore[attr-defined]
        out = self._seq(body, header, teardown, return_to, loop)
        for src in out:
            self._edge(src, teardown)
        self._edge(teardown, exc, EXC)
        return [teardown]

    def _try(self, stmt: ast.Try, preds: List[int], exc: int,
             return_to: int, loop: Optional[_LoopFrame]) -> List[int]:
        finals = stmt.finalbody
        if finals:
            # Build the finally once; route every leaving edge through
            # it.  Its out-edges fan to each continuation the in-edges
            # could need -- conservative, never hides a path.
            fin_entry = self._new(DISPATCH, stmt)
            fin_out = self._seq(finals, fin_entry, exc, return_to, loop)
            inner_exc: int = fin_entry
            inner_return = fin_entry
        else:
            fin_entry = -1
            fin_out = []
            inner_exc = exc
            inner_return = return_to

        if stmt.handlers:
            dispatch = self._new(DISPATCH, stmt)
            body_exc = dispatch
        else:
            dispatch = -1
            body_exc = inner_exc

        body_out = self._seq(stmt.body, preds[0], body_exc,
                             inner_return, loop, preds=preds)
        if stmt.orelse:
            body_out = self._seq(stmt.orelse, body_exc, body_exc,
                                 inner_return, loop, preds=body_out)

        out: List[int] = list(body_out)
        if stmt.handlers:
            bare = any(h.type is None or
                       (isinstance(h.type, ast.Name)
                        and h.type.id == "BaseException")
                       for h in stmt.handlers)
            for handler in stmt.handlers:
                h_out = self._seq(handler.body, dispatch, inner_exc,
                                  inner_return, loop)
                out += h_out
            if not bare:
                # No handler may match: the exception propagates.
                self._edge(dispatch, inner_exc, EXC)

        if finals:
            for src in out:
                self._edge(src, fin_entry)
            # The finally's continuations: fall through, re-raise, and
            # any return/loop exits the protected region wanted.
            after: List[int] = list(fin_out)
            for src in fin_out:
                self._edge(src, exc, EXC)
                if return_to != self.exit:
                    self._edge(src, return_to)
                else:
                    self._edge(src, self.exit)
            return after
        return out


def build_cfg(func: FunctionNode) -> CFG:
    """Construct the CFG of one (sync or async) function definition."""
    return _Builder(func).build()


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method definition in a module, at any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]
