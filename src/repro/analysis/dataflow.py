"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

Three layers, each used by the REP6xx/REP7xx/REP205 rules:

- :class:`ForwardAnalysis` — a minimal worklist framework.  Subclasses
  provide the lattice (``initial``/``join``) and the transfer function,
  which returns *two* out-states: one for normal fall-through edges and
  one for exception edges.  That split is what lets a release call
  count as released even when the release itself raises (the sanctioned
  ``BufferError`` teardown idiom), while an *acquire* that raises
  propagates its pre-state (the resource never existed).

- :class:`ResourceLeakAnalysis` — a value-state lattice instance: each
  acquisition site mints a resource id, names bind to ids, and ids
  carry a may-set over ``{"open", "released"}``.  A resource that can
  reach either exit with ``"open"`` still in its set — and that never
  *escaped* the function (returned, stored to an attribute, passed to
  another call) — is a leak on some path.

- :class:`CallGraph` — module-level, name-based call edges for
  interprocedural reachability (REP201/REP203/REP205).  Deliberately
  intra-module: a cross-module graph would mark e.g. the transport
  layer's parent-side ``unlink`` as worker-reachable through shared
  helper names and drown the fork-safety rules in false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Generic, Iterable, List, Optional,
                    Sequence, Set, Tuple, TypeVar)

from repro.analysis.cfg import (CFG, EXC, WITH_EXIT, CFGNode, FunctionNode,
                                build_cfg)

S = TypeVar("S")


def call_name(call: ast.Call) -> str:
    """Dotted name of a call target: ``os.open``, ``ctx.Process``, ``f``."""
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")  # call on a non-name receiver: x[0].close()
    return ".".join(reversed(parts))


def name_matches(dotted: str, candidates: Iterable[str]) -> bool:
    """True if ``dotted`` is one of ``candidates`` or ends with one
    (``shared_memory.SharedMemory`` matches candidate ``SharedMemory``)."""
    for cand in candidates:
        if dotted == cand or dotted.endswith("." + cand):
            return True
    return False


def calls_at(node: CFGNode) -> List[ast.Call]:
    """Every call expression evaluated at this CFG node, inner-first."""
    found = [e for e in node.walk_expressions() if isinstance(e, ast.Call)]
    found.reverse()
    return found


# ---------------------------------------------------------------------------
# the worklist framework
# ---------------------------------------------------------------------------

class ForwardAnalysis(Generic[S]):
    """May-forward dataflow: join over paths, fixpoint by worklist."""

    def initial(self) -> S:
        """The state flowing into the entry node."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> Tuple[S, S]:
        """Return ``(normal_out, exc_out)`` for this node."""
        raise NotImplementedError

    def run(self, cfg: CFG) -> Dict[int, S]:
        """Fixpoint; returns the in-state of every reached node."""
        in_states: Dict[int, S] = {cfg.entry: self.initial()}
        work: List[int] = [cfg.entry]
        while work:
            nid = work.pop()
            state = in_states[nid]
            normal_out, exc_out = self.transfer(cfg.node(nid), state)
            for target, kind in cfg.successors(nid):
                out = exc_out if kind == EXC else normal_out
                if target in in_states:
                    merged = self.join(in_states[target], out)
                    if merged == in_states[target]:
                        continue
                    in_states[target] = merged
                else:
                    in_states[target] = out
                work.append(target)
        return in_states


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------

Defs = Dict[str, FrozenSet[int]]


def _assigned_names(node: CFGNode) -> List[str]:
    """Names this node (re)binds — assignment targets, loop and with
    variables.  Compound bodies bind at their own nodes, not here."""
    stmt = node.stmt
    names: List[str] = []
    if node.kind == WITH_EXIT or stmt is None:
        return names

    def collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect(elt)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect(item.optional_vars)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.append(stmt.name)
    return names


class ReachingDefinitions(ForwardAnalysis[Defs]):
    """Which nodes' bindings of each name may reach each point."""

    def initial(self) -> Defs:
        return {}

    def join(self, a: Defs, b: Defs) -> Defs:
        out = dict(a)
        for var, sites in b.items():
            out[var] = out.get(var, frozenset()) | sites
        return out

    def transfer(self, node: CFGNode, state: Defs) -> Tuple[Defs, Defs]:
        killed = _assigned_names(node)
        if not killed:
            return state, state
        out = dict(state)
        for var in killed:
            out[var] = frozenset({node.id})
        # On the exception edge the binding may not have happened.
        exc = self.join(state, out)
        return out, exc


# ---------------------------------------------------------------------------
# resource lifecycle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResourceSpec:
    """One tracked resource class: how it is acquired and discharged.

    ``releases`` are method names on the bound variable (``x.close()``);
    ``release_funcs`` are function names taking it as first argument
    (``os.close(x)``).  ``arity=2`` acquisitions (``socketpair``,
    ``os.pipe``) bind a pair and are tracked only when unpacked into
    two plain names.  ``require_kwarg`` gates on a literal keyword:
    ``("create", True)`` distinguishes owning a SharedMemory segment
    (must ``unlink``) from merely attaching to one.
    """

    kind: str
    acquires: Tuple[str, ...]
    releases: Tuple[str, ...]
    release_funcs: Tuple[str, ...] = ()
    #: function names that *use* the resource without taking ownership
    #: (``os.write(fd, buf)``); their arguments do not escape.
    use_funcs: Tuple[str, ...] = ()
    arity: int = 1
    require_kwarg: Optional[Tuple[str, object]] = None
    duty: str = "close"  # human word for the missing action in findings
    #: True for resources that never leave the function's custody —
    #: storing or returning them does NOT transfer the release duty
    #: (a ring slot index is handed to the peer only *after* its header
    #: says READY, so escapes never excuse a missing header store).
    no_escape: bool = False

    def matches_acquire(self, call: ast.Call) -> bool:
        if not name_matches(call_name(call), self.acquires):
            return False
        if self.require_kwarg is not None:
            key, expected = self.require_kwarg
            for kw in call.keywords:
                if kw.arg == key:
                    return (isinstance(kw.value, ast.Constant)
                            and kw.value.value == expected)
            return False
        return True


OPEN = "open"
RELEASED = "released"

RState = FrozenSet[str]


@dataclass(frozen=True)
class Resource:
    """Identity of one acquisition site (node id + position in node)."""

    rid: Tuple[int, int]
    kind: str
    duty: str
    var: str
    line: int
    no_escape: bool = False


@dataclass
class Leak:
    resource: Resource
    #: "exit", "raise_exit", or "exit+raise_exit"
    path: str


class _RState:
    """Immutable-ish analysis state: name bindings + per-resource sets."""

    __slots__ = ("bindings", "states")

    def __init__(self, bindings: Dict[str, Tuple[int, int]],
                 states: Dict[Tuple[int, int], RState]) -> None:
        self.bindings = bindings
        self.states = states

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _RState)
                and self.bindings == other.bindings
                and self.states == other.states)

    def copy(self) -> "_RState":
        return _RState(dict(self.bindings), dict(self.states))


class ResourceLeakAnalysis(ForwardAnalysis[_RState]):
    """Find tracked resources that may reach an exit un-discharged."""

    def __init__(self, specs: Sequence[ResourceSpec]) -> None:
        self.specs = tuple(specs)
        self.resources: Dict[Tuple[int, int], Resource] = {}
        self.escaped: Set[Tuple[int, int]] = set()
        self._release_methods: FrozenSet[str] = frozenset(
            m for s in specs for m in s.releases)
        self._release_funcs: FrozenSet[str] = frozenset(
            f for s in specs for f in s.release_funcs)
        self._use_funcs: FrozenSet[str] = frozenset(
            f for s in specs for f in s.use_funcs)

    # -- lattice -------------------------------------------------------------

    def initial(self) -> _RState:
        return _RState({}, {})

    def join(self, a: _RState, b: _RState) -> _RState:
        bindings = {var: rid for var, rid in a.bindings.items()
                    if b.bindings.get(var) == rid}
        # A name bound to different resources on different paths keeps
        # neither binding: releasing through it can no longer be proven
        # to discharge a specific id, so both ids escape.
        for var, rid in a.bindings.items():
            other = b.bindings.get(var)
            if other is not None and other != rid:
                self._escape(rid)
                self._escape(other)
        states = dict(a.states)
        for rid, st in b.states.items():
            states[rid] = states.get(rid, frozenset()) | st
        return _RState(bindings, states)

    # -- transfer ------------------------------------------------------------

    def transfer(self, node: CFGNode,
                 state: _RState) -> Tuple[_RState, _RState]:
        pre = state
        out = state.copy()
        attempted: Set[Tuple[int, int]] = set()

        if node.kind == WITH_EXIT:
            # __exit__ discharges every resource the header acquired.
            for item in node.items:
                var = item.optional_vars
                if isinstance(var, ast.Name):
                    rid = out.bindings.get(var.id)
                    if rid is not None:
                        out.states[rid] = frozenset({RELEASED})
            return out, out

        stmt = node.stmt
        if stmt is None:
            return out, out

        for call in calls_at(node):
            self._apply_release(call, out, attempted)
            self._apply_escapes(call, out)
        self._apply_other_escapes(node, out)

        acquired = self._apply_acquire(node, out)

        # Exception semantics: a raise during the acquire leaves the
        # pre-state (nothing was acquired); a raise during *any*
        # teardown attempt on the resource still counts it discharged
        # on that edge — the BufferError teardown idiom, and the
        # reason ``probe.close()`` raising does not read as an unlink
        # leak — while the normal edge keeps demanding the real duty;
        # any other raise sees the post-state.
        if acquired:
            exc = pre
        elif attempted:
            exc = out.copy()
            for rid in attempted:
                exc.states[rid] = frozenset({RELEASED})
        else:
            exc = out
        return out, exc

    # release ---------------------------------------------------------------

    def _apply_release(self, call: ast.Call, out: _RState,
                       attempted: Set[Tuple[int, int]]) -> None:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in self._release_methods
                and isinstance(func.value, ast.Name)):
            rid = out.bindings.get(func.value.id)
            if rid is not None:
                attempted.add(rid)
                res = self.resources[rid]
                if func.attr in self._methods_for(res.kind):
                    out.states[rid] = frozenset({RELEASED})
        dotted = call_name(call)
        if self._release_funcs and name_matches(dotted, self._release_funcs):
            for arg in call.args[:1]:
                if isinstance(arg, ast.Name):
                    rid = out.bindings.get(arg.id)
                    if rid is not None:
                        attempted.add(rid)
                        out.states[rid] = frozenset({RELEASED})

    def _methods_for(self, kind: str) -> FrozenSet[str]:
        return frozenset(m for s in self.specs if s.kind == kind
                         for m in s.releases)

    # escape ----------------------------------------------------------------

    def _escape(self, rid: Tuple[int, int]) -> None:
        res = self.resources.get(rid)
        if res is not None and not res.no_escape:
            self.escaped.add(rid)

    def _escape_names_in(self, expr: ast.AST, out: _RState) -> None:
        for name in ast.walk(expr):
            if isinstance(name, ast.Name):
                rid = out.bindings.get(name.id)
                if rid is not None:
                    self._escape(rid)

    def _apply_escapes(self, call: ast.Call, out: _RState) -> None:
        """A tracked resource passed as an argument leaves our sight."""
        dotted = call_name(call)
        if self._use_funcs and name_matches(dotted, self._use_funcs):
            return  # a use, not an ownership transfer
        is_release_func = name_matches(dotted, self._release_funcs)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if is_release_func and arg in call.args[:1]:
                continue  # os.close(fd) is the discharge itself
            self._escape_names_in(arg, out)

    def _apply_other_escapes(self, node: CFGNode, out: _RState) -> None:
        stmt = node.stmt
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._escape_names_in(stmt.value, out)
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            if isinstance(value, ast.Name):
                src_rid = out.bindings.get(value.id)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if src_rid is not None:
                            out.bindings[target.id] = src_rid  # alias
                        elif target.id in out.bindings:
                            del out.bindings[target.id]  # rebound away
                    elif src_rid is not None:
                        self._escape(src_rid)  # stored to attr/subscript
            elif not isinstance(value, ast.Call):
                # Stored into a literal, comprehension, or computed
                # value: the structure now holds the handle.
                self._escape_names_in(value, out)
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and \
                            target.id in out.bindings:
                        del out.bindings[target.id]
        for expr in node.expressions():
            for sub in ast.walk(expr):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)) and \
                        sub.value is not None:
                    self._escape_names_in(sub.value, out)

    # acquire ---------------------------------------------------------------

    def _apply_acquire(self, node: CFGNode, out: _RState) -> bool:
        stmt = node.stmt
        call: Optional[ast.Call] = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            call, targets = stmt.value, stmt.targets
        elif (isinstance(stmt, (ast.With, ast.AsyncWith))
              and node.kind != WITH_EXIT):
            acquired_any = False
            for idx, item in enumerate(stmt.items):
                if not isinstance(item.context_expr, ast.Call):
                    continue
                spec = self._spec_for(item.context_expr)
                var = item.optional_vars
                if spec is not None and isinstance(var, ast.Name):
                    self._mint(node, idx, spec, var.id, out)
                    acquired_any = True
            return acquired_any
        if call is None:
            return False
        spec = self._spec_for(call)
        if spec is None or len(targets) != 1:
            return False
        target = targets[0]
        if spec.arity == 2:
            if (isinstance(target, (ast.Tuple, ast.List))
                    and len(target.elts) == 2
                    and all(isinstance(e, ast.Name) for e in target.elts)):
                for idx, elt in enumerate(target.elts):
                    assert isinstance(elt, ast.Name)
                    self._mint(node, idx, spec, elt.id, out)
                return True
            return False
        if isinstance(target, ast.Name):
            self._mint(node, 0, spec, target.id, out)
            return True
        return False

    def _spec_for(self, call: ast.Call) -> Optional[ResourceSpec]:
        for spec in self.specs:
            if spec.matches_acquire(call):
                return spec
        return None

    def _mint(self, node: CFGNode, idx: int, spec: ResourceSpec,
              var: str, out: _RState) -> None:
        rid = (node.id, idx)
        self.resources[rid] = Resource(rid, spec.kind, spec.duty, var,
                                       node.line, spec.no_escape)
        out.bindings[var] = rid
        out.states[rid] = frozenset({OPEN})

    # -- the verdict ---------------------------------------------------------

    def leaks(self, cfg: CFG) -> List[Leak]:
        in_states = self.run(cfg)
        open_at: Dict[Tuple[int, int], List[str]] = {}
        for exit_id, label in ((cfg.exit, "exit"),
                               (cfg.raise_exit, "raise_exit")):
            state = in_states.get(exit_id)
            if state is None:
                continue
            for rid, st in state.states.items():
                if OPEN in st and rid not in self.escaped:
                    open_at.setdefault(rid, []).append(label)
        found = [Leak(self.resources[rid], "+".join(paths))
                 for rid, paths in sorted(open_at.items())]
        return found


def find_leaks(func: FunctionNode,
               specs: Sequence[ResourceSpec]) -> List[Leak]:
    """Convenience wrapper: build the CFG and report leaks in one call."""
    analysis = ResourceLeakAnalysis(specs)
    return analysis.leaks(build_cfg(func))


# ---------------------------------------------------------------------------
# the module call graph
# ---------------------------------------------------------------------------

@dataclass
class CallGraph:
    """Name-based, intra-module call edges.

    Nodes are bare definition names (functions and methods alike — a
    method call ``obj.handle()`` can reach any same-module ``def
    handle``, which over-approximates dispatch but never misses it).
    ``target=`` keywords count as call edges so ``Process(target=f)``
    and thread targets are followed.
    """

    defs: Dict[str, List[FunctionNode]] = field(default_factory=dict)
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, tree: ast.Module) -> "CallGraph":
        graph = cls()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                graph.defs.setdefault(node.name, []).append(node)
        for name, funcs in graph.defs.items():
            called = graph.edges.setdefault(name, set())
            for func in funcs:
                called |= _called_names(func)
        return graph

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Definition names reachable from ``roots`` (roots included
        when defined in the module)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.defs]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.edges.get(name, ()):
                if callee in self.defs and callee not in seen:
                    stack.append(callee)
        return seen

    def reachable_calls(self, root: str) -> Set[str]:
        """Every *called name* (defined here or not) visible from any
        definition reachable from ``root`` — the set REP201/REP203
        probe for ``reopen_files``."""
        names: Set[str] = set()
        for defname in self.reachable([root]):
            names |= self.edges.get(defname, set())
        return names


def _called_names(func: FunctionNode) -> Set[str]:
    """Bare names called directly inside ``func`` (nested defs have
    their own graph node and are skipped here; calling one still makes
    an edge by name)."""
    names: Set[str] = set()

    class _V(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not func:
                return  # the nested def owns its body
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Call(self, node: ast.Call) -> None:
            target = node.func
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    names.add(kw.value.id)
                elif kw.arg == "target" and isinstance(kw.value,
                                                       ast.Attribute):
                    names.add(kw.value.attr)
            self.generic_visit(node)

    _V().visit(func)
    return names
