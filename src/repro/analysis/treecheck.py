"""treecheck: a structural verifier for built and saved indexes.

PR 1's ``fsck`` (:func:`repro.gist.validate.scrub_file`) verifies the
*page* format: superblock seal, per-slot CRCs, slot/page-id agreement.
This module extends verification to *index semantics* — the invariants
that make search over a tree exact:

- **BP containment** — every leaf key lies inside the bounding
  predicate its parent stores for the leaf, and every child predicate
  is covered by its parent's predicate (``BP_KEY_ESCAPE`` /
  ``BP_CHILD_ESCAPE``);
- **bite discipline** — every JB/XJB corner bite lies inside its
  predicate's MBR and removes no data point stored beneath the bitten
  node (``BITE_OUTSIDE_MBR`` / ``BITE_NONEMPTY``); a data point inside
  a bite is exactly the "sloppy predicate" that silently drops true
  nearest neighbors;
- **page census** — every stored page is reachable from the root
  exactly once (``PAGE_ORPHAN`` / ``PAGE_DUPLICATE`` /
  ``PAGE_MISSING``), and the tree's size matches the stored RIDs
  (``SIZE_MISMATCH`` / ``RID_DUPLICATE``);
- **quantized pages** — on SQ8 leaves (see
  :class:`repro.storage.codecs.QuantizedLeafCodec`) a reconstructed
  key may legally sit outside its parent predicate by up to the
  quantization-cell half diagonal; beyond that tolerance — or outside
  the page's own declared cell bounds — it is ``QUANT_BOUND_ESCAPE``,
  and the delta-packed RIDs must come back strictly increasing
  (``RID_ORDER``).  Bite checks shrink by the per-key cell half widths
  so only *certain* violations are flagged;
- **shape bounds** — per-level fanout within the AM family's page
  budget (``NODE_OVERFULL`` / ``NODE_UNDERFULL``), consistent levels
  (``LEVEL_MISMATCH``), and uniform leaf depth (``TREE_UNBALANCED``).

Violations are *reported*, never raised — damage is the output, as with
``scrub_file`` — through a :class:`CheckReport` that also carries the
amdb structural summary (:func:`repro.amdb.tree_report.tree_report`) so
per-node failures sit alongside the utilization metrics amdb already
computes.  ``repro fsck --deep`` wires :func:`deep_scrub` into the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

#: violation codes, stable identifiers the tests and CI assert on.
BP_KEY_ESCAPE = "BP_KEY_ESCAPE"
BP_CHILD_ESCAPE = "BP_CHILD_ESCAPE"
BITE_OUTSIDE_MBR = "BITE_OUTSIDE_MBR"
BITE_NONEMPTY = "BITE_NONEMPTY"
PAGE_ORPHAN = "PAGE_ORPHAN"
PAGE_MISSING = "PAGE_MISSING"
PAGE_DUPLICATE = "PAGE_DUPLICATE"
NODE_OVERFULL = "NODE_OVERFULL"
NODE_UNDERFULL = "NODE_UNDERFULL"
NODE_EMPTY = "NODE_EMPTY"
LEVEL_MISMATCH = "LEVEL_MISMATCH"
TREE_UNBALANCED = "TREE_UNBALANCED"
SIZE_MISMATCH = "SIZE_MISMATCH"
RID_DUPLICATE = "RID_DUPLICATE"
QUANT_BOUND_ESCAPE = "QUANT_BOUND_ESCAPE"
RID_ORDER = "RID_ORDER"

ALL_CODES = (
    BP_KEY_ESCAPE, BP_CHILD_ESCAPE, BITE_OUTSIDE_MBR, BITE_NONEMPTY,
    PAGE_ORPHAN, PAGE_MISSING, PAGE_DUPLICATE, NODE_OVERFULL,
    NODE_UNDERFULL, NODE_EMPTY, LEVEL_MISMATCH, TREE_UNBALANCED,
    SIZE_MISMATCH, RID_DUPLICATE, QUANT_BOUND_ESCAPE, RID_ORDER,
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one node (or tree-wide, page_id None)."""

    code: str
    page_id: Optional[int]
    detail: str

    def render(self) -> str:
        where = f"page {self.page_id}" if self.page_id is not None \
            else "tree"
        return f"[{self.code}] {where}: {self.detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "page_id": self.page_id,
                "detail": self.detail}


@dataclass
class CheckReport:
    """What one semantic verification pass over a tree found."""

    method: str
    path: Optional[str] = None
    nodes_checked: int = 0
    keys_checked: int = 0
    bites_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: amdb structural summary (None when the tree is too damaged).
    tree_summary: Optional[Any] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def codes(self) -> Set[str]:
        return {v.code for v in self.violations}

    def add(self, code: str, page_id: Optional[int], detail: str) -> None:
        self.violations.append(Violation(code, page_id, detail))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tool": "treecheck",
            "method": self.method,
            "path": self.path,
            "nodes_checked": self.nodes_checked,
            "keys_checked": self.keys_checked,
            "bites_checked": self.bites_checked,
            "clean": self.clean,
            "violations": [v.to_dict() for v in self.violations],
        }

    def format(self) -> str:
        target = self.path or f"<in-memory {self.method} tree>"
        lines = [f"treecheck {target}",
                 f"method       : {self.method}",
                 f"checked      : {self.nodes_checked} nodes, "
                 f"{self.keys_checked} keys, "
                 f"{self.bites_checked} bites"]
        summary = self.tree_summary
        if summary is not None and getattr(summary, "levels", None):
            util = [f"L{lvl.level} {lvl.mean_utilization:.2f}"
                    for lvl in summary.levels]
            lines.append("utilization  : " + ", ".join(util)
                         + "  (amdb per-level mean)")
        if self.violations:
            lines.append(f"violations   : {len(self.violations)}")
            lines.extend("  " + v.render() for v in self.violations)
        else:
            lines.append("violations   : none")
        lines.append(f"verdict      : "
                     f"{'clean' if self.clean else 'BROKEN'}")
        return "\n".join(lines)


def check_tree(tree: Any, path: Optional[str] = None,
               check_fill: bool = True) -> CheckReport:
    """Verify every semantic invariant of a built tree.

    Never raises on a broken tree — violations are the output.  With
    ``check_fill=False`` the minimum-fanout bound is skipped (useful for
    trees mid-mutation).
    """
    from repro.geometry.bites import BittenRect
    from repro.storage.errors import StorageError

    report = CheckReport(method=tree.ext.name, path=path)
    store_pages = set(tree.store.page_ids())

    if tree.root_id is None:
        if tree.height != 0 or tree.size != 0:
            report.add(SIZE_MISMATCH, None,
                       f"empty tree records height {tree.height}, "
                       f"size {tree.size}")
        for page_id in sorted(store_pages):
            report.add(PAGE_ORPHAN, page_id,
                       "page stored but the tree is empty")
        return report

    ext = tree.ext
    reachable: Set[int] = set()
    rids: List[int] = []
    leaf_depths: Set[int] = set()

    def peek(page_id: int) -> Optional[Any]:
        try:
            return tree._peek(page_id)
        except StorageError as exc:
            report.add(PAGE_MISSING, page_id, str(exc))
            return None

    def check_bites(pred: Any, child_keys: np.ndarray,
                    child_halfs: Optional[np.ndarray],
                    child_id: int) -> None:
        if not isinstance(pred, BittenRect) or not pred.bites:
            return
        rect = pred.rect
        # Bites are carved with float arithmetic relative to the MBR
        # corners; containment is checked to a relative tolerance so an
        # ulp of carving noise is not reported as damage.
        tol = 1e-9 * np.maximum(
            1.0, np.maximum(np.abs(rect.lo), np.abs(rect.hi)))
        for bite in pred.bites:
            report.bites_checked += 1
            if np.any(bite.lo < rect.lo - tol) \
                    or np.any(bite.hi > rect.hi + tol):
                report.add(
                    BITE_OUTSIDE_MBR, child_id,
                    f"bite at corner 0b{bite.corner_mask:b} "
                    f"[{bite.lo.tolist()}, {bite.hi.tolist()}] "
                    f"escapes the predicate MBR")
            if len(child_keys):
                removed = bite.removes_points(child_keys)
                if bool(removed.any()) and child_halfs is not None:
                    # Quantized keys are reconstructions: one may drift
                    # into a bite by up to its cell half width without
                    # the original having been inside.  Flag only when
                    # the whole cell box sits inside the bite — a
                    # violation no quantization error can explain.
                    sure = (np.all(child_keys - child_halfs > bite.lo,
                                   axis=1)
                            & np.all(child_keys + child_halfs < bite.hi,
                                     axis=1))
                    removed = removed & sure
                if bool(removed.any()):
                    culprit = child_keys[int(np.argmax(removed))]
                    report.add(
                        BITE_NONEMPTY, child_id,
                        f"bite at corner 0b{bite.corner_mask:b} "
                        f"contains stored point "
                        f"{culprit.tolist()}; the predicate excludes "
                        f"covered data")

    def check_quantized_leaf(node: Any) -> None:
        """SQ8 integrity: RID order and cell-bound discipline."""
        block = node.quantized_block()
        if block is None or not len(node):
            return
        rid_arr = node.rid_array()
        if len(rid_arr) > 1 \
                and not bool((np.diff(rid_arr) > 0).all()):
            report.add(RID_ORDER, node.page_id,
                       "delta-packed RIDs are not strictly increasing")
        keys = node.keys_array()
        if bool((keys < block.mins).any()) \
                or bool((keys > block.maxs).any()):
            report.add(QUANT_BOUND_ESCAPE, node.page_id,
                       "reconstructed key outside the page's declared "
                       "quantization cell bounds")

    def walk(page_id: int, depth: int, expected_level: Optional[int]
             ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """DFS one subtree; returns the stacked keys stored beneath and
        their per-key quantization half widths (None when the whole
        subtree is exact)."""
        empty = (np.empty((0, ext.dim), dtype=np.float64), None)
        if page_id in reachable:
            report.add(PAGE_DUPLICATE, page_id,
                       "page referenced from more than one parent")
            return empty
        node = peek(page_id)
        if node is None:
            return empty
        reachable.add(page_id)
        report.nodes_checked += 1

        if expected_level is not None and node.level != expected_level:
            report.add(LEVEL_MISMATCH, page_id,
                       f"node at level {node.level}, expected "
                       f"{expected_level}")
        capacity = tree.capacity(node.level)
        if len(node) > capacity:
            report.add(NODE_OVERFULL, page_id,
                       f"{len(node)} entries exceed the page budget "
                       f"of {capacity}")
        is_root = page_id == tree.root_id
        if check_fill and not is_root \
                and len(node) < tree.min_entries(node.level):
            report.add(NODE_UNDERFULL, page_id,
                       f"{len(node)} entries under the minimum fanout "
                       f"of {tree.min_entries(node.level)}")

        if node.is_leaf:
            leaf_depths.add(depth)
            rids.extend(e.rid for e in node.entries)
            report.keys_checked += len(node.entries)
            check_quantized_leaf(node)
            if not node.entries:
                return empty
            keys = node.keys_array()
            half = node.key_halfwidths()
            halfs = (np.broadcast_to(half, keys.shape)
                     if half is not None else None)
            return keys, halfs

        if not node.entries:
            report.add(NODE_EMPTY, page_id, "inner node with no entries")
            return empty

        parts: List[np.ndarray] = []
        half_parts: List[Optional[np.ndarray]] = []
        for entry in node.entries:
            child_keys, child_halfs = walk(entry.child, depth + 1,
                                           node.level - 1)
            parts.append(child_keys)
            half_parts.append(child_halfs)
            child = peek(entry.child)
            if child is None:
                continue
            if child.is_leaf:
                half = child.key_halfwidths()
                qtol = (float(np.sqrt((half * half).sum())) + 1e-9
                        if half is not None else 0.0)
                for leaf_entry in child.entries:
                    if not ext.contains(entry.pred, leaf_entry.key):
                        if half is not None:
                            if ext.min_dist(entry.pred,
                                            leaf_entry.key) <= qtol:
                                continue
                            report.add(
                                QUANT_BOUND_ESCAPE, entry.child,
                                f"reconstructed key "
                                f"{np.asarray(leaf_entry.key).tolist()} "
                                f"(rid {leaf_entry.rid}) escapes the "
                                f"bounding predicate its parent "
                                f"{page_id} holds by more than the "
                                f"quantization tolerance {qtol:.3g}")
                            continue
                        report.add(
                            BP_KEY_ESCAPE, entry.child,
                            f"stored key "
                            f"{np.asarray(leaf_entry.key).tolist()} "
                            f"(rid {leaf_entry.rid}) escapes the "
                            f"bounding predicate its parent "
                            f"{page_id} holds")
            else:
                for grandchild in child.entries:
                    if not ext.covers_pred(entry.pred, grandchild.pred):
                        report.add(
                            BP_CHILD_ESCAPE, entry.child,
                            f"child predicate (for page "
                            f"{grandchild.child}) is not covered by "
                            f"the predicate parent {page_id} holds")
            check_bites(entry.pred, child_keys, child_halfs, entry.child)
        if not parts:
            return empty
        all_keys = np.concatenate(parts)
        if any(h is not None for h in half_parts):
            all_halfs: Optional[np.ndarray] = np.concatenate(
                [h if h is not None else np.zeros_like(k)
                 for k, h in zip(parts, half_parts)])
        else:
            all_halfs = None
        return all_keys, all_halfs

    root = peek(tree.root_id)
    if root is not None:
        if root.level != tree.height - 1:
            report.add(LEVEL_MISMATCH, tree.root_id,
                       f"root level {root.level} inconsistent with "
                       f"height {tree.height}")
        walk(tree.root_id, 0, root.level)

    if len(leaf_depths) > 1:
        report.add(TREE_UNBALANCED, None,
                   f"leaves at depths {sorted(leaf_depths)}")
    if len(rids) != len(set(rids)):
        dupes = len(rids) - len(set(rids))
        report.add(RID_DUPLICATE, None,
                   f"{dupes} RID(s) stored in more than one leaf")
    if len(rids) != tree.size:
        report.add(SIZE_MISMATCH, None,
                   f"tree.size {tree.size} != stored entries "
                   f"{len(rids)}")
    for page_id in sorted(store_pages - reachable):
        report.add(PAGE_ORPHAN, page_id, "page unreachable from the root")

    try:
        from repro.amdb.tree_report import tree_report
        report.tree_summary = tree_report(tree)
    except Exception:  # amlint: disable=REP301
        # A damaged tree may defeat the amdb summary; the violations
        # above are the verdict, the summary is garnish.
        report.tree_summary = None
    return report


@dataclass
class DeepReport:
    """``repro fsck --deep``: page-level scrub plus semantic check."""

    scrub: Any
    check: Optional[CheckReport] = None
    skipped: str = ""

    @property
    def clean(self) -> bool:
        return bool(self.scrub.clean and self.check is not None
                    and self.check.clean)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tool": "fsck-deep",
            "path": self.scrub.path,
            "scrub_clean": self.scrub.clean,
            "deep": self.check.to_dict() if self.check is not None
            else None,
            "skipped": self.skipped,
            "clean": self.clean,
        }

    def format(self) -> str:
        lines = [self.scrub.format()]
        if self.check is not None:
            lines.append("")
            lines.append(self.check.format())
        elif self.skipped:
            lines.append(f"deep check   : skipped — {self.skipped}")
        lines.append(f"deep verdict : {'clean' if self.clean else 'BROKEN'}")
        return "\n".join(lines)


def deep_scrub(path: str) -> DeepReport:
    """Scrub a saved index page-by-page, then verify index semantics.

    The semantic phase needs decodable pages, so it runs whenever the
    superblock verifies and no slot is corrupt; orphaned slots do not
    block it (they are precisely what the deep check localizes against
    the root's reach).  Never raises on damage.
    """
    from repro.gist.persist import load_tree
    from repro.gist.validate import scrub_file
    from repro.storage.errors import StorageError

    scrub = scrub_file(path)
    report = DeepReport(scrub=scrub)
    if not scrub.superblock_ok:
        report.skipped = "superblock damaged"
        return report
    if scrub.corrupt_slots:
        report.skipped = (f"{len(scrub.corrupt_slots)} corrupt slot(s); "
                          f"page-level damage defeats semantic checks")
        return report
    try:
        tree = load_tree(path=path)
    except (StorageError, ValueError) as exc:
        report.skipped = f"tree does not load: {exc}"
        return report
    report.check = check_tree(tree, path=path)
    return report
