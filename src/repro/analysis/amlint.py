"""amlint: an AST-based invariant linter for the repro codebase.

The engine is deliberately small: every rule is an object with a stable
ID, a severity, a path scope, and a ``check`` hook that walks a parsed
module (or, for cross-file rules, the whole collection of parsed
modules) and yields :class:`Finding` objects.  The engine owns what is
common to all rules:

- **discovery** — directories are walked for ``*.py`` files; files are
  parsed once and shared by every rule;
- **scoping** — each file's path is normalized to a package-relative
  form (``bulk/loader.py``) so rules can target the subsystems whose
  invariants they encode;
- **suppressions** — a ``# amlint: disable=RULE1,RULE2`` comment on a
  line suppresses findings of those rules on that line; an unknown rule
  ID inside a suppression is itself an ERROR (:data:`SUPPRESSION_RULE`),
  so stale suppressions cannot rot silently;
- **output** — findings render as one-per-line human text or as a JSON
  document (the CI artifact format).

The exit-code contract: ERROR findings fail the build, WARNING findings
inform.  ``repro lint`` wires this into the CLI.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

#: severity levels, in increasing order of consequence.
WARNING = "warning"
ERROR = "error"

#: pseudo-rule reported when a file cannot be parsed at all.
PARSE_RULE = "REP000"
#: pseudo-rule reported for unknown rule IDs inside suppressions.
SUPPRESSION_RULE = "REP001"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.upper()} {self.rule} {self.message}")


@dataclass
class ModuleSource:
    """One parsed Python file, shared by all rules."""

    path: str
    #: package-relative posix path ("bulk/loader.py") used for scoping.
    relpath: str
    text: str
    tree: ast.Module
    #: line number -> rule IDs suppressed on that line ("all" = every rule).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def exit_code(self) -> int:
        """1 if any ERROR finding survived suppression, else 0."""
        return 1 if self.errors else 0


#: the ID list after ``disable=``: comma-separated identifiers.  The
#: list pattern (rather than one greedy character class) is what lets a
#: trailing prose justification — ``# amlint: disable=REP101 because
#: the bench stamps wall time`` — suppress REP101 instead of producing
#: a bogus ``REP101 because ...`` token that suppresses nothing *and*
#: trips the unknown-rule check.
_SUPPRESS_RE = re.compile(
    r"#\s*amlint:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)")


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line numbers to the rule IDs suppressed on them.

    Only real ``#`` comments count — tokenized, so a docstring that
    *documents* the suppression syntax suppresses nothing.  A line may
    carry several IDs (``disable=REP601,REP702``) and several
    ``disable=`` clauses; each ID is validated individually downstream.
    """
    out: Dict[int, Set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            ids: Set[str] = set()
            for match in _SUPPRESS_RE.finditer(tok.string):
                ids.update(token.strip()
                           for token in match.group(1).split(","))
            ids.discard("")
            if ids:
                out[tok.start[0]] = ids
    except (tokenize.TokenError, IndentationError):
        pass  # unparseable files already carry a REP000 finding
    return out


def module_relpath(path: str) -> str:
    """Normalize ``path`` to the package-relative form rules scope on.

    ``src/repro/bulk/loader.py`` becomes ``bulk/loader.py``; a lint
    fixture laid out as ``tests/analysis/fixtures/bulk/x.py`` becomes
    ``bulk/x.py`` so the fixtures exercise exactly the scoping the real
    tree gets.  Files under neither anchor keep their basename.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for anchor in ("repro", "fixtures"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx + 1:]
            if tail:
                return "/".join(tail)
    return parts[-1]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        else:
            found.append(path)
    return found


def load_source(path: str) -> Tuple[Optional[ModuleSource], Optional[Finding]]:
    """Parse one file; an unreadable or unparseable file is a finding."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return None, Finding(PARSE_RULE, ERROR, path, 0, 0,
                             f"cannot read file: {exc}")
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return None, Finding(PARSE_RULE, ERROR, path, exc.lineno or 0,
                             exc.offset or 0, f"syntax error: {exc.msg}")
    return ModuleSource(path=path, relpath=module_relpath(path),
                        text=text, tree=tree,
                        suppressions=parse_suppressions(text)), None


def _known_rule_ids(rules: Sequence[Any]) -> Set[str]:
    ids = {str(getattr(rule, "id")) for rule in rules}
    ids.update({PARSE_RULE, SUPPRESSION_RULE, "all"})
    return ids


def lint_sources(modules: Sequence[ModuleSource],
                 rules: Optional[Sequence[Any]] = None) -> List[Finding]:
    """Run every rule over parsed modules and apply suppressions."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES
        rules = ALL_RULES
    raw: List[Finding] = []
    for rule in rules:
        if getattr(rule, "project", False):
            raw.extend(rule.check_project(modules))
        else:
            for module in modules:
                if rule.applies_to(module.relpath):
                    raw.extend(rule.check(module))

    known = _known_rule_ids(rules)
    by_path = {module.path: module for module in modules}
    kept: List[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None:
            disabled = module.suppressions.get(finding.line, set())
            if finding.rule in disabled or "all" in disabled:
                continue
        kept.append(finding)

    # Unknown rule IDs inside suppression comments are findings in their
    # own right: a typo'd suppression silently disables nothing, which
    # is worse than no suppression at all.
    for module in modules:
        for lineno, ids in sorted(module.suppressions.items()):
            for rule_id in sorted(ids - known):
                if SUPPRESSION_RULE in ids:
                    continue
                kept.append(Finding(
                    SUPPRESSION_RULE, ERROR, module.path, lineno, 0,
                    f"suppression names unknown rule {rule_id!r}"))

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Any]] = None) -> LintReport:
    """Lint files and directories; the one-call entry the CLI uses."""
    modules: List[ModuleSource] = []
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        module, problem = load_source(path)
        if problem is not None:
            findings.append(problem)
        if module is not None:
            modules.append(module)
    findings.extend(lint_sources(modules, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=findings, files_checked=len(files))


# ---------------------------------------------------------------------------
# baselines: land WARNING-tier (or newly strict) rules without blocking
# ---------------------------------------------------------------------------

def finding_fingerprint(finding: Finding) -> str:
    """A stable identity for baseline comparison.

    Keyed on (rule, package-relative path, message) — deliberately NOT
    the line number, so unrelated edits shifting a known finding down
    the file do not resurrect it as "new".  Two identical findings in
    one file share a fingerprint; the baseline waves off both, which is
    the right trade for a don't-block-on-old-debt mechanism.
    """
    return f"{finding.rule}|{module_relpath(finding.path)}|{finding.message}"


def baseline_document(report: LintReport) -> str:
    """Serialize the report's finding fingerprints as a baseline file."""
    doc = {
        "tool": "amlint-baseline",
        "fingerprints": sorted({finding_fingerprint(f)
                                for f in report.findings}),
    }
    return json.dumps(doc, indent=2) + "\n"


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file; missing file means an empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return set()
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    return {str(fp) for fp in doc.get("fingerprints", [])}


def apply_baseline(report: LintReport,
                   fingerprints: Set[str]) -> Tuple[LintReport, int]:
    """Drop findings the baseline already acknowledges.

    Returns the filtered report plus the number of findings waved off;
    the caller's exit code then reflects only *new* errors.
    """
    kept = [f for f in report.findings
            if finding_fingerprint(f) not in fingerprints]
    waved = len(report.findings) - len(kept)
    return LintReport(findings=kept,
                      files_checked=report.files_checked), waved


def format_findings(report: LintReport) -> str:
    """Human-readable rendering, one finding per line plus a summary."""
    lines = [finding.render() for finding in report.findings]
    lines.append(f"amlint: {len(report.errors)} error(s), "
                 f"{len(report.warnings)} warning(s) across "
                 f"{report.files_checked} file(s)")
    return "\n".join(lines)


def findings_to_json(report: LintReport) -> str:
    """The CI artifact format: a stable JSON document."""
    doc = {
        "tool": "amlint",
        "files_checked": report.files_checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(doc, indent=2) + "\n"
