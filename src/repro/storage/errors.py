"""Typed storage exception hierarchy.

The storage stack used to fail with whatever the lowest layer threw —
bare ``KeyError`` for a missing slot, ``struct.error`` for a truncated
image, ``json.JSONDecodeError`` for a mangled superblock.  Callers could
not tell "this page was never written" from "this page was written and
then damaged", and the difference matters: the first is a programming
error, the second is the disk lying, and only the second can be
quarantined or retried.

The hierarchy keeps backward compatibility with the duck types the rest
of the codebase (and its tests) already handle:

- :class:`PageMissingError` is also a ``KeyError`` — an absent or freed
  page still fails lookups the dict-like way;
- :class:`PageCorruptError` is also a ``ValueError`` — a damaged file is
  still "not a saved GiST" to legacy callers;
- :class:`TransientIOError` is also an ``OSError`` — a flaky read still
  looks like the I/O failure it models, but is the *only* storage error
  the retry machinery (:mod:`repro.storage.retry`) will mask.
"""

from __future__ import annotations

from typing import Optional


class StorageError(Exception):
    """Base class for storage-stack failures.

    Carries optional ``path`` and ``page_id`` context so error messages
    always say *which* file and slot failed.
    """

    def __init__(self, message: str, *, path: Optional[str] = None,
                 page_id: Optional[int] = None) -> None:
        self.path = path
        self.page_id = page_id
        parts = []
        if path is not None:
            parts.append(str(path))
        if page_id is not None:
            parts.append(f"page {page_id}")
        prefix = ": ".join(parts)
        full = f"{prefix}: {message}" if prefix else message
        super().__init__(full)
        self._message = full

    def __str__(self) -> str:  # beat KeyError's repr-style __str__
        return self._message


class PageMissingError(StorageError, KeyError):
    """The requested page does not exist (never written, freed, or
    beyond the end of the file)."""


class PageCorruptError(StorageError, ValueError):
    """The page (or superblock) exists but its bytes fail verification:
    checksum mismatch, impossible header, truncated image, or a slot
    holding a different page than addressed."""


class TransientIOError(StorageError, OSError):
    """A read or write failed in a way that may succeed on retry
    (interrupted syscall, injected transient fault).  The only storage
    error :func:`repro.storage.retry.call_with_retry` masks."""
