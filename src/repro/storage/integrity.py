"""Page integrity: CRC32C checksums sealed into every page image.

Layout
------
Every page image starts with the 32-byte header of
:mod:`repro.storage.page`:

====================  ======  ========================================
bytes                 field   meaning
====================  ======  ========================================
``[0:8)``             pid     page id (``<q``)
``[8:12)``            level   tree level (``<i``)
``[12:16)``           count   entry count (``<i``)
``[16:20)``           crc     CRC32C of the image with this field zeroed
``[20:24)``           epoch   on-disk format epoch (``<I``; 0 = unsealed)
``[24:32)``           —       reserved (zero)
====================  ======  ========================================

The checksum lives in the header's formerly-reserved region rather than
after the entry payload, deliberately: the payload budget
(``page_payload``) is untouched, so fanout — and therefore every tree
shape and I/O count the paper's experiments depend on — is identical
with and without integrity checking.

The CRC covers the *entire* page image (header, entries, and padding)
with only the 4 CRC bytes themselves zeroed, so a flip anywhere —
including in the epoch field or the zero padding — is detected.  A page
whose crc and epoch are both zero is treated as *unsealed* (legacy,
written before checksums existed) and skipped; a sealed page can never
legally present that state because ``FORMAT_EPOCH`` is nonzero.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.storage.errors import PageCorruptError

#: Current on-disk format epoch stamped into sealed pages.  Bump when
#: the page layout changes incompatibly; readers can then dispatch.
FORMAT_EPOCH = 1

#: Byte offset of the (crc, epoch) pair inside the page header.
CHECKSUM_OFFSET = 16

_CHECKSUM = struct.Struct("<II")

# -- CRC32C (Castagnoli) ----------------------------------------------------
#
# Table-driven, reflected, polynomial 0x1EDC6F41 (reversed 0x82F63B78) —
# the variant used by iSCSI, ext4 metadata, and LevelDB/RocksDB blocks.

_POLY = 0x82F63B78


def _make_table() -> Tuple[int, ...]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _make_table()


def crc32c(data: Union[bytes, bytearray, memoryview],
           crc: int = 0) -> int:
    """CRC32C of ``data``; chainable via the ``crc`` seed."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


_NP_TABLE = np.array(_TABLE, dtype=np.uint32)


def crc32c_many(blocks: np.ndarray) -> np.ndarray:
    """CRC32C of many equal-length byte blocks at once.

    ``blocks`` is an ``(n, size)`` uint8 array; returns an ``(n,)``
    uint32 array equal element-wise to :func:`crc32c` of each row.  The
    CRC recurrence is inherently serial in the *byte* direction, so this
    runs it column by column with all rows advancing in lockstep — the
    per-byte Python cost is paid ``size`` times instead of ``n * size``
    times, which is what makes sealing a whole bulk-loaded level at a
    time cheap.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2:
        raise ValueError("blocks must be a 2-D (n, size) uint8 array")
    crc = np.full(len(blocks), 0xFFFFFFFF, dtype=np.uint32)
    for col in blocks.T:
        crc = _NP_TABLE[(crc ^ col) & 0xFF] ^ (crc >> np.uint32(8))
    return crc ^ np.uint32(0xFFFFFFFF)


# -- sealing and verification ----------------------------------------------

def _blanked(image: bytes) -> bytes:
    """The image with the 4 CRC bytes zeroed (what the CRC covers)."""
    return (image[:CHECKSUM_OFFSET] + b"\x00\x00\x00\x00"
            + image[CHECKSUM_OFFSET + 4:])


def seal_image(image: bytes, epoch: int = FORMAT_EPOCH) -> bytes:
    """Return ``image`` with (crc, epoch) spliced into its header."""
    stamped = (image[:CHECKSUM_OFFSET]
               + _CHECKSUM.pack(0, epoch)
               + image[CHECKSUM_OFFSET + 8:])
    crc = crc32c(_blanked(stamped))
    return (stamped[:CHECKSUM_OFFSET]
            + struct.pack("<I", crc)
            + stamped[CHECKSUM_OFFSET + 4:])


def seal_images(images: np.ndarray, epoch: int = FORMAT_EPOCH) -> np.ndarray:
    """Seal an ``(n, page_size)`` array of page images in place.

    Row ``i`` afterwards equals ``seal_image(row_i_bytes)`` — same
    stamped epoch, same CRC bytes — with the checksums computed by one
    :func:`crc32c_many` pass instead of ``n`` scalar CRC loops.
    """
    images[:, CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] = 0
    images[:, CHECKSUM_OFFSET + 4:CHECKSUM_OFFSET + 8] = np.frombuffer(
        struct.pack("<I", epoch), dtype=np.uint8)
    crcs = crc32c_many(images)
    images[:, CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] = (
        crcs.astype("<u4").view(np.uint8).reshape(-1, 4))
    return images


def verify_images(images: np.ndarray) -> np.ndarray:
    """Seal check for an ``(n, page_size)`` image array; no mutation.

    Returns an ``(n,)`` bool array: True where the stored CRC32C does
    not match the image contents (a corrupt page).  Unsealed rows
    (crc == epoch == 0) are reported clean, matching
    :func:`verify_image`.  The checksum field is *virtually* zeroed —
    the CRC recurrence substitutes zero bytes for those four columns —
    so the input may be a read-only view (e.g. straight over an mmap)
    and is never copied or written.
    """
    if images.ndim != 2:
        raise ValueError("images must be a 2-D (n, size) uint8 array")
    n, size = images.shape
    if size < CHECKSUM_OFFSET + 8:
        raise ValueError(f"rows of {size} bytes cannot hold a seal")
    crc = np.full(n, 0xFFFFFFFF, dtype=np.uint32)
    zero = np.zeros(n, dtype=np.uint32)
    for col in range(size):
        byte = zero if CHECKSUM_OFFSET <= col < CHECKSUM_OFFSET + 4 \
            else images[:, col]
        crc = _NP_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> np.uint32(8))
    crc ^= np.uint32(0xFFFFFFFF)
    seals = np.ascontiguousarray(
        images[:, CHECKSUM_OFFSET:CHECKSUM_OFFSET + 8]).view("<u4")
    stored, epochs = seals[:, 0], seals[:, 1]
    unsealed = (stored == 0) & (epochs == 0)
    return (crc != stored) & ~unsealed


def verify_view(image: Any, *, path: Optional[str] = None,
                page_id: Optional[int] = None) -> int:
    """:func:`verify_image` for a zero-copy buffer (memoryview/bytes).

    Chains the CRC over the segments around the checksum field instead
    of materializing a blanked copy, so an mmap-backed page is verified
    without ever copying its 4 KiB image.
    """
    crc, epoch = _CHECKSUM.unpack_from(image, CHECKSUM_OFFSET)
    if crc == 0 and epoch == 0:
        return 0
    # A memoryview iterates as plain ints whatever the buffer is
    # (bytes, mmap slice, uint8 array row), which the scalar CRC needs.
    buf = memoryview(image)
    actual = crc32c(buf[:CHECKSUM_OFFSET])
    actual = crc32c(b"\x00\x00\x00\x00", actual)
    actual = crc32c(buf[CHECKSUM_OFFSET + 4:], actual)
    if actual != crc:
        raise PageCorruptError(
            f"checksum mismatch: stored {crc:#010x}, computed "
            f"{actual:#010x} (epoch {epoch})", path=path, page_id=page_id)
    return epoch


def stored_seal(image: bytes) -> Tuple[int, int]:
    """The (crc, epoch) pair stored in a page image's header."""
    return _CHECKSUM.unpack_from(image, CHECKSUM_OFFSET)


def verify_image(image: bytes, *, path: Optional[str] = None,
                 page_id: Optional[int] = None) -> int:
    """Check a page image's seal; returns its epoch (0 = unsealed).

    Raises :class:`PageCorruptError` on mismatch.  Unsealed images
    (crc == epoch == 0, i.e. written before checksums existed) pass.
    """
    crc, epoch = stored_seal(image)
    if crc == 0 and epoch == 0:
        return 0
    actual = crc32c(_blanked(image))
    if actual != crc:
        raise PageCorruptError(
            f"checksum mismatch: stored {crc:#010x}, computed "
            f"{actual:#010x} (epoch {epoch})", path=path, page_id=page_id)
    return epoch
