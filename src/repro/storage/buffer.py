"""An LRU buffer pool over a page file.

The paper's section 6 argues that total-I/O comparisons change once inner
nodes fit in memory (the reason XJB is preferred over JB in practice).
The buffer pool lets benchmarks quantify that: wrap a page file, replay a
workload, and read the hit/miss split per level.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.storage.errors import StorageError, TransientIOError
from repro.storage.retry import RetryPolicy, call_with_retry


@dataclass
class BufferStats:
    """Hit/miss counters, split by tree level."""

    hits: int = 0
    misses: int = 0
    misses_by_level: Dict[int, int] = field(default_factory=dict)
    #: frames dropped to make room (LRU victims + resize shrinkage).
    evictions: int = 0
    #: pages loaded by the read-ahead path (never counted as misses).
    prefetched: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def leaf_misses(self) -> int:
        return self.misses_by_level.get(0, 0)

    @property
    def inner_misses(self) -> int:
        return sum(n for lvl, n in self.misses_by_level.items() if lvl != 0)


class BufferPool:
    """LRU cache of pages; misses fall through to the page file.

    The pool mirrors the page file's read interface so a
    :class:`~repro.gist.tree.GiST` can be pointed at either one.  Only
    *misses* reach the underlying page file, so its counters (and any
    profiler listeners) see buffered I/O traffic.
    """

    def __init__(self, pagefile: Any, capacity_pages: int,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.pagefile = pagefile
        self.capacity = capacity_pages
        self.retry = retry
        self._sleep = sleep
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self.stats = BufferStats()

    @property
    def counting(self) -> bool:
        return self.pagefile.counting

    @counting.setter
    def counting(self, value: bool) -> None:
        self.pagefile.counting = value

    def read(self, page_id: int) -> Any:
        if page_id in self._frames:
            node = self._frames[page_id]
            self._frames.move_to_end(page_id)
            if self.pagefile.counting:
                self.stats.hits += 1
            return node
        # A read that raises (corrupt page, exhausted retries) must not
        # disturb the frames: no partial node is cached, LRU order keeps
        # reflecting only successful accesses.
        node = call_with_retry(lambda: self.pagefile.read(page_id),
                               self.retry, sleep=self._sleep)
        if self.pagefile.counting:
            self.stats.misses += 1
            lvl = node.level
            self.stats.misses_by_level[lvl] = \
                self.stats.misses_by_level.get(lvl, 0) + 1
        self._frames[page_id] = node
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        return node

    def read_many(self, page_ids: Iterable[int]) -> List[Any]:
        """Counted bulk read mirroring ``[self.read(p) for p in page_ids]``.

        Pages missing from the pool are fetched from the page file in a
        single ``read_many`` call (so contiguous slot runs gather and
        their seals batch-verify), then hits and misses are replayed in
        request order against the frames — same LRU order, eviction
        timing, and hit/miss split as the sequential loop.
        """
        page_ids = list(page_ids)
        missing: List[int] = []
        seen = set()
        for pid in page_ids:
            if pid not in self._frames and pid not in seen:
                seen.add(pid)
                missing.append(pid)
        fetched: Dict[int, Any] = {}
        if missing:
            inner_many = getattr(self.pagefile, "read_many", None)
            if inner_many is not None and len(missing) > 1:
                try:
                    fetched = dict(zip(missing, inner_many(missing)))
                except TransientIOError:
                    fetched = {}
            if not fetched:
                for pid in missing:
                    fetched[pid] = call_with_retry(
                        lambda pid=pid: self.pagefile.read(pid),
                        self.retry, sleep=self._sleep)
        nodes: List[Any] = []
        for pid in page_ids:
            if pid in self._frames:
                node = self._frames[pid]
                self._frames.move_to_end(pid)
                if self.pagefile.counting:
                    self.stats.hits += 1
            else:
                node = fetched.pop(pid, None)
                if node is None:
                    # A frame inserted earlier in this batch was already
                    # evicted again (capacity smaller than the batch):
                    # refetch, as the sequential loop would.
                    node = call_with_retry(
                        lambda pid=pid: self.pagefile.read(pid),
                        self.retry, sleep=self._sleep)
                if self.pagefile.counting:
                    self.stats.misses += 1
                    lvl = node.level
                    self.stats.misses_by_level[lvl] = \
                        self.stats.misses_by_level.get(lvl, 0) + 1
                self._frames[pid] = node
                if len(self._frames) > self.capacity:
                    self._frames.popitem(last=False)
                    self.stats.evictions += 1
            nodes.append(node)
        return nodes

    def prefetch(self, page_ids: Iterable[int]) -> int:
        """Warm frames for ``page_ids`` without touching hit/miss
        counters; returns the number of pages actually fetched.

        The read-ahead path between serving requests uses this: pages
        already resident are left where they sit in LRU order (a
        prefetch is not an access), absent pages gather through the
        page file's bulk ``read_many`` when it has one, and any
        storage fault abandons the warm-up silently — read-ahead is
        advisory, so a damaged page must fail the *real* read that
        wants it, with that read's retry and quarantine semantics, not
        an opportunistic warm-up.  Unlike :meth:`pin_pages` there is no
        residency promise: over-capacity batches simply evict.
        """
        wanted = [pid for pid in dict.fromkeys(page_ids)
                  if pid not in self._frames]
        if not wanted:
            return 0
        was_counting = self.pagefile.counting
        self.pagefile.counting = False
        try:
            inner_many = getattr(self.pagefile, "read_many", None)
            if inner_many is not None and len(wanted) > 1:
                nodes = inner_many(wanted)
            else:
                nodes = [self.pagefile.read(pid) for pid in wanted]
        except StorageError:
            return 0
        finally:
            self.pagefile.counting = was_counting
        for pid, node in zip(wanted, nodes):
            self._frames[pid] = node
            if len(self._frames) > self.capacity:
                self._frames.popitem(last=False)
                self.stats.evictions += 1
        self.stats.prefetched += len(wanted)
        return len(wanted)

    def record_access(self, page_id: int, level: int) -> None:
        """Count a repeat access to an already-fetched page.

        The batch engine fetches each page once per block; every further
        query visiting it within the block would have found the page
        resident, so it books as a buffer hit — the underlying page file
        sees no traffic, mirroring what :meth:`read` does for resident
        pages.

        Only *resident* pages book hits: if the page was never cached —
        or has been evicted since — the repeat access is one a
        sequential run would have served as a miss, so it counts as a
        miss here and as traffic on the underlying page file, instead
        of inflating the hit rate with phantom hits.
        """
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            if self.pagefile.counting:
                self.stats.hits += 1
            return
        if self.pagefile.counting:
            self.stats.misses += 1
            self.stats.misses_by_level[level] = \
                self.stats.misses_by_level.get(level, 0) + 1
        self.pagefile.record_access(page_id, level)

    def resize(self, capacity_pages: int) -> None:
        """Change the frame budget in place, evicting LRU pages if it
        shrinks (the batch runner sizes frames per worker this way)."""
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.capacity = capacity_pages
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1

    def peek(self, page_id: int) -> Any:
        return self.pagefile.peek(page_id)

    def write(self, node: Any) -> None:
        # Write-through: the page file is the truth, so it is written
        # first; if that fails, the (now possibly stale) frame is
        # dropped so a later read refetches rather than serving a
        # version the disk never accepted.
        try:
            self.pagefile.write(node)
        except Exception:
            self._frames.pop(node.page_id, None)
            raise
        if node.page_id in self._frames:
            self._frames[node.page_id] = node

    def write_many(self, nodes: Iterable[Any]) -> None:
        """Write-through a batch: ``self.write`` per node, in order.

        Deliberately not delegated to the inner store's bulk path — the
        frame-invalidation bookkeeping of :meth:`write` must run per
        node, so a mid-batch failure leaves no stale frame behind.
        """
        for node in nodes:
            self.write(node)

    def free(self, page_id: int) -> None:
        self._frames.pop(page_id, None)
        self.pagefile.free(page_id)

    def invalidate(self, page_id: int) -> None:
        """Drop a frame whose slot was rewritten beneath the pool.

        The WAL apply phase writes raw page images straight into the
        page file; any resident frame for that slot is stale and must
        not serve reads."""
        self._frames.pop(page_id, None)

    def allocate(self) -> int:
        return self.pagefile.allocate()

    def reserve(self, up_to: int) -> None:
        self.pagefile.reserve(up_to)

    def page_ids(self) -> List[int]:
        return self.pagefile.page_ids()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames or page_id in self.pagefile

    def __len__(self) -> int:
        return len(self.pagefile)

    def add_listener(self, listener: Callable[[int, int], None]) -> None:
        self.pagefile.add_listener(listener)

    def remove_listener(self, listener: Callable[[int, int], None]) -> None:
        self.pagefile.remove_listener(listener)

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self.pagefile.flush()

    def close(self) -> None:
        self.pagefile.close()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def clear(self) -> None:
        """Drop all frames (cold-cache experiments)."""
        self._frames.clear()

    def pin_pages(self, page_ids: Iterable[int]) -> None:
        """Pre-load pages (e.g. all inner nodes) without counting.

        The pinned set must fit in the pool: with more distinct pages
        than frames, later reads would silently evict earlier ones and
        the "pinned" pages would not actually be resident — so that
        raises instead of lying.
        """
        page_ids = list(page_ids)
        distinct = len(set(page_ids))
        if distinct > self.capacity:
            raise ValueError(
                f"cannot pin {distinct} pages into {self.capacity} "
                f"frames; resize() the pool first")
        was_counting = self.pagefile.counting
        self.pagefile.counting = False
        try:
            for page_id in page_ids:
                self.read(page_id)
        finally:
            self.pagefile.counting = was_counting
