"""An LRU buffer pool over a page file.

The paper's section 6 argues that total-I/O comparisons change once inner
nodes fit in memory (the reason XJB is preferred over JB in practice).
The buffer pool lets benchmarks quantify that: wrap a page file, replay a
workload, and read the hit/miss split per level.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.storage.retry import RetryPolicy, call_with_retry


@dataclass
class BufferStats:
    """Hit/miss counters, split by tree level."""

    hits: int = 0
    misses: int = 0
    misses_by_level: Dict[int, int] = field(default_factory=dict)
    #: frames dropped to make room (LRU victims + resize shrinkage).
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def leaf_misses(self) -> int:
        return self.misses_by_level.get(0, 0)

    @property
    def inner_misses(self) -> int:
        return sum(n for lvl, n in self.misses_by_level.items() if lvl != 0)


class BufferPool:
    """LRU cache of pages; misses fall through to the page file.

    The pool mirrors the page file's read interface so a
    :class:`~repro.gist.tree.GiST` can be pointed at either one.  Only
    *misses* reach the underlying page file, so its counters (and any
    profiler listeners) see buffered I/O traffic.
    """

    def __init__(self, pagefile, capacity_pages: int,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 sleep=time.sleep):
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.pagefile = pagefile
        self.capacity = capacity_pages
        self.retry = retry
        self._sleep = sleep
        self._frames: "OrderedDict[int, object]" = OrderedDict()
        self.stats = BufferStats()

    @property
    def counting(self) -> bool:
        return self.pagefile.counting

    @counting.setter
    def counting(self, value: bool) -> None:
        self.pagefile.counting = value

    def read(self, page_id: int):
        if page_id in self._frames:
            node = self._frames[page_id]
            self._frames.move_to_end(page_id)
            if self.pagefile.counting:
                self.stats.hits += 1
            return node
        # A read that raises (corrupt page, exhausted retries) must not
        # disturb the frames: no partial node is cached, LRU order keeps
        # reflecting only successful accesses.
        node = call_with_retry(lambda: self.pagefile.read(page_id),
                               self.retry, sleep=self._sleep)
        if self.pagefile.counting:
            self.stats.misses += 1
            lvl = node.level
            self.stats.misses_by_level[lvl] = \
                self.stats.misses_by_level.get(lvl, 0) + 1
        self._frames[page_id] = node
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        return node

    def record_access(self, page_id: int, level: int) -> None:
        """Count a repeat access to an already-fetched page.

        The batch engine fetches each page once per block; every further
        query visiting it within the block would have found the page
        resident, so it books as a buffer hit — the underlying page file
        sees no traffic, mirroring what :meth:`read` does for resident
        pages.
        """
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
        if self.pagefile.counting:
            self.stats.hits += 1

    def resize(self, capacity_pages: int) -> None:
        """Change the frame budget in place, evicting LRU pages if it
        shrinks (the batch runner sizes frames per worker this way)."""
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.capacity = capacity_pages
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1

    def peek(self, page_id: int):
        return self.pagefile.peek(page_id)

    def write(self, node) -> None:
        # Write-through: the page file is the truth, so it is written
        # first; if that fails, the (now possibly stale) frame is
        # dropped so a later read refetches rather than serving a
        # version the disk never accepted.
        try:
            self.pagefile.write(node)
        except Exception:
            self._frames.pop(node.page_id, None)
            raise
        if node.page_id in self._frames:
            self._frames[node.page_id] = node

    def free(self, page_id: int) -> None:
        self._frames.pop(page_id, None)
        self.pagefile.free(page_id)

    def allocate(self) -> int:
        return self.pagefile.allocate()

    def reserve(self, up_to: int) -> None:
        self.pagefile.reserve(up_to)

    def page_ids(self):
        return self.pagefile.page_ids()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames or page_id in self.pagefile

    def __len__(self) -> int:
        return len(self.pagefile)

    def add_listener(self, listener) -> None:
        self.pagefile.add_listener(listener)

    def remove_listener(self, listener) -> None:
        self.pagefile.remove_listener(listener)

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self.pagefile.flush()

    def close(self) -> None:
        self.pagefile.close()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def clear(self) -> None:
        """Drop all frames (cold-cache experiments)."""
        self._frames.clear()

    def pin_pages(self, page_ids) -> None:
        """Pre-load pages (e.g. all inner nodes) without counting."""
        was_counting = self.pagefile.counting
        self.pagefile.counting = False
        try:
            for page_id in page_ids:
                self.read(page_id)
        finally:
            self.pagefile.counting = was_counting
