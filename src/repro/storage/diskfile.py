"""An on-disk page file: nodes live as real page images in one file.

`MemoryPageFile` accounts for I/O; `FilePageFile` actually performs it.
Every `read` seeks to the page's slot and decodes the fixed-size image
through the node codec, every `write` encodes and writes it back, so a
tree backed by this store runs with genuine disk-page granularity
(typically behind a :class:`~repro.storage.buffer.BufferPool`).

Resilience: images are sealed with CRC32C checksums by the codec, so a
torn write or bit flip surfaces as a typed
:class:`~repro.storage.errors.PageCorruptError` instead of silently
decoding garbage; missing or freed slots raise
:class:`~repro.storage.errors.PageMissingError`; interrupted syscalls
are wrapped as :class:`~repro.storage.errors.TransientIOError` and
masked by bounded exponential backoff (:mod:`repro.storage.retry`).
"""

from __future__ import annotations

import errno
import os
import struct
import time
from typing import Dict, List, Optional

from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.node import Node
from repro.storage.codecs import NodeCodec
from repro.storage.errors import (PageCorruptError, PageMissingError,
                                  TransientIOError)
from repro.storage.pagefile import AccessListener, PageStats
from repro.storage.retry import RetryPolicy, call_with_retry

#: OS errors that plausibly succeed on retry.
_TRANSIENT_ERRNOS = frozenset(
    e for e in (getattr(errno, name, None)
                for name in ("EINTR", "EAGAIN", "EBUSY"))
    if e is not None)


class FilePageFile:
    """Page-granular node storage in a single binary file.

    Page ids map to fixed-size slots (`page_id * page_size`); slot 0 is
    reserved.  The codec comes from the tree's extension, so construct
    via :meth:`for_extension` or pass a prepared :class:`NodeCodec`.
    """

    def __init__(self, path: str, codec: NodeCodec,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 sleep=time.sleep):
        self.path = path
        self.codec = codec
        self.page_size = codec.page_size
        self.retry = retry
        self._sleep = sleep
        # "a+b" would force writes to the end regardless of seeks;
        # open read-write, creating the file when missing.
        if not os.path.exists(path):
            open(path, "wb").close()
        self._file = open(path, "r+b")
        self._next_id = max(1, os.path.getsize(path) // self.page_size)
        self._levels: Dict[int, int] = {}
        self._free: List[int] = []
        self.stats = PageStats()
        self._listeners: List[AccessListener] = []
        self.counting = True

    @classmethod
    def for_extension(cls, path: str, extension,
                      page_size: int, **kwargs) -> "FilePageFile":
        from repro.storage.codecs import IndexEntryCodec, LeafEntryCodec
        codec = NodeCodec(page_size, LeafEntryCodec(extension.dim),
                          IndexEntryCodec(extension.pred_codec()))
        return cls(path, codec, **kwargs)

    # -- id allocation ------------------------------------------------------

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def reserve(self, up_to: int) -> None:
        self._next_id = max(self._next_id, up_to + 1)

    # -- raw slot access -----------------------------------------------------

    def _slot_count(self) -> int:
        """Slots the file currently holds (slot 0 included)."""
        # fstat sees the OS file, not Python's write buffer — flush so
        # freshly written slots are counted.
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size // self.page_size

    def _read_raw(self, page_id: int) -> bytes:
        """The raw image bytes of a slot; typed errors, no decode."""
        if page_id < 1:
            raise PageMissingError("page ids start at 1", path=self.path,
                                   page_id=page_id)
        try:
            self._file.seek(page_id * self.page_size)
            image = self._file.read(self.page_size)
        except TransientIOError:
            raise
        except OSError as exc:
            if exc.errno in _TRANSIENT_ERRNOS:
                raise TransientIOError(
                    f"transient read failure: {exc}", path=self.path,
                    page_id=page_id) from exc
            raise
        if len(image) < self.page_size:
            raise PageMissingError("slot beyond end of file",
                                   path=self.path, page_id=page_id)
        return image

    def _write_raw(self, page_id: int, image: bytes) -> None:
        """Write raw image bytes into a slot (scrub/fault tooling)."""
        if len(image) != self.page_size:
            raise ValueError(
                f"image is {len(image)} bytes, slot holds {self.page_size}")
        self._file.seek(page_id * self.page_size)
        self._file.write(image)

    def _slot_page_id(self, page_id: int) -> Optional[int]:
        """The page id stamped in a slot's header, or None if absent."""
        if page_id < 1 or page_id >= max(self._slot_count(), 1):
            return None
        self._file.seek(page_id * self.page_size)
        header = self._file.read(8)
        if len(header) < 8:
            return None
        return struct.unpack("<q", header)[0]

    # -- node access ----------------------------------------------------------

    def _read_image(self, page_id: int) -> Node:
        image = self._read_raw(page_id)
        pid, level, raw_entries = self.codec.decode(image, path=self.path)
        if pid == -1:
            raise PageMissingError("slot was freed", path=self.path,
                                   page_id=page_id)
        if pid != page_id:
            raise PageCorruptError(f"slot holds page {pid}",
                                   path=self.path, page_id=page_id)
        if level == 0:
            entries = [LeafEntry(k, rid) for k, rid in raw_entries]
        else:
            entries = [IndexEntry(pred, child)
                       for pred, child in raw_entries]
        return Node(page_id, level, entries)

    def read(self, page_id: int) -> Node:
        node = call_with_retry(lambda: self._read_image(page_id),
                               self.retry, sleep=self._sleep)
        if self.counting:
            self.stats.record_read(node.level)
            for listener in self._listeners:
                listener(page_id, node.level)
        return node

    def record_access(self, page_id: int, level: int) -> None:
        """Count a query access without physical I/O (batch engine)."""
        if self.counting:
            self.stats.record_read(level)
            for listener in self._listeners:
                listener(page_id, level)

    def peek(self, page_id: int) -> Node:
        return call_with_retry(lambda: self._read_image(page_id),
                               self.retry, sleep=self._sleep)

    #: the parallel bulk loader may write disjoint page ranges of this
    #: store from forked workers (each through a private descriptor).
    supports_parallel_write = True

    def write(self, node: Node) -> None:
        entries = [tuple(e) for e in node.entries]
        image = self.codec.encode(node.page_id, node.level, entries)
        self._write_raw(node.page_id, image)
        self._levels[node.page_id] = node.level
        self.stats.writes += 1

    def write_many(self, nodes) -> None:
        """Encode and write a batch of nodes in one pass.

        Slot-for-slot byte-identical to calling :meth:`write` per node:
        same codec, same seals — but leaf bodies are block-encoded,
        checksums run as one batched CRC pass, and contiguous page-id
        runs land with a single seek+write each.
        """
        nodes = list(nodes)
        if not nodes:
            return
        pages = []
        for node in nodes:
            if node.level == 0:
                body = self.codec.leaf_codec.encode_block(
                    node.keys_array(), node.rid_array()) if len(node) else b""
            else:
                body = b"".join(self.codec.index_codec.encode(tuple(e))
                                for e in node.entries)
            pages.append((node.page_id, node.level, len(node), body))
        images = self.codec.encode_pages(pages)

        order = sorted(range(len(nodes)), key=lambda i: pages[i][0])
        run: list = []
        for i in order + [None]:
            if run and (i is None
                        or pages[i][0] != pages[run[-1]][0] + 1):
                self._file.seek(pages[run[0]][0] * self.page_size)
                self._file.write(images[run].tobytes())
                run = []
            if i is not None:
                run.append(i)
        for node in nodes:
            self._levels[node.page_id] = node.level
        self.stats.writes += len(nodes)

    def note_external_writes(self, pairs) -> None:
        """Account ``(page_id, level)`` pages another process wrote.

        The parallel bulk loader's forked workers write their shards
        through private descriptors; the parent calls this so its level
        map and write counters match a sequential build's.
        """
        for page_id, level in pairs:
            self._levels[page_id] = level
            self.stats.writes += 1

    def free(self, page_id: int) -> None:
        # Stamp the slot with page id -1 (sealed) so stale reads fail
        # loudly with PageMissingError, never decode as live data.
        self._write_raw(page_id, self.codec.encode(-1, 0, []))
        self._levels.pop(page_id, None)
        self._free.append(page_id)

    def __contains__(self, page_id: int) -> bool:
        # Header-only membership: no body decode, so a corrupt-but-
        # present slot answers True and a freed slot (-1) answers False
        # without raising.
        try:
            return self._slot_page_id(page_id) == page_id
        except OSError:
            return False

    def page_ids(self) -> List[int]:
        """Live page ids, by scanning slot headers (reload-safe)."""
        return [pid for pid in range(1, max(self._slot_count(), 1))
                if self._slot_page_id(pid) == pid]

    def __len__(self) -> int:
        return len(self.page_ids())

    # -- listeners ----------------------------------------------------------

    def add_listener(self, listener: AccessListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self._listeners.remove(listener)

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
