"""An on-disk page file: nodes live as real page images in one file.

`MemoryPageFile` accounts for I/O; `FilePageFile` actually performs it.
Every `read` seeks to the page's slot and decodes the fixed-size image
through the node codec, every `write` encodes and writes it back, so a
tree backed by this store runs with genuine disk-page granularity
(typically behind a :class:`~repro.storage.buffer.BufferPool`).

Resilience: images are sealed with CRC32C checksums by the codec, so a
torn write or bit flip surfaces as a typed
:class:`~repro.storage.errors.PageCorruptError` instead of silently
decoding garbage; missing or freed slots raise
:class:`~repro.storage.errors.PageMissingError`; interrupted syscalls
are wrapped as :class:`~repro.storage.errors.TransientIOError` and
masked by bounded exponential backoff (:mod:`repro.storage.retry`).
"""

from __future__ import annotations

import errno
import mmap
import os
import struct
import time
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.gist.entry import IndexEntry
from repro.gist.node import Node
from repro.storage.codecs import NodeCodec
from repro.storage.errors import (PageCorruptError, PageMissingError,
                                  TransientIOError)
from repro.storage.integrity import verify_images, verify_view
from repro.storage.page import PAGE_HEADER_SIZE
from repro.storage.pagefile import AccessListener, PageStats
from repro.storage.retry import RetryPolicy, call_with_retry

#: OS errors that plausibly succeed on retry.
_TRANSIENT_ERRNOS = frozenset(
    e for e in (getattr(errno, name, None)
                for name in ("EINTR", "EAGAIN", "EBUSY"))
    if e is not None)


class FilePageFile:
    """Page-granular node storage in a single binary file.

    Page ids map to fixed-size slots (`page_id * page_size`); slot 0 is
    reserved.  The codec comes from the tree's extension, so construct
    via :meth:`for_extension` or pass a prepared :class:`NodeCodec`.

    With ``mmap_mode=True`` reads go through a shared read-only memory
    map of the file instead of seek+read syscalls: page images are
    memoryview slices over the map, leaf bodies decode as zero-copy
    array views (:meth:`LeafEntryCodec.decode_block` into
    :meth:`Node.leaf_from_arrays`), and :meth:`read_many` gathers
    contiguous slot runs without touching the data at all.  Writes stay
    on the ordinary descriptor — an mmap shares the OS page cache with
    file writes, so in-place updates are visible through the existing
    map after a flush and only file *growth* forces a remap.
    """

    def __init__(self, path: str, codec: NodeCodec,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 sleep: Callable[[float], None] = time.sleep,
                 mmap_mode: bool = False) -> None:
        self.path = path
        self.codec = codec
        self.page_size = codec.page_size
        self.retry = retry
        self._sleep = sleep
        self.mmap_mode = bool(mmap_mode)
        # "a+b" would force writes to the end regardless of seeks;
        # open read-write, creating the file when missing.
        if not os.path.exists(path):
            open(path, "wb").close()
        self._file = open(path, "r+b")
        self._map: Optional[mmap.mmap] = None
        self._map_slots = 0
        self._map_dirty = True
        self._next_id = max(1, os.path.getsize(path) // self.page_size)
        self._levels: Dict[int, int] = {}
        self._free: List[int] = []
        self.stats = PageStats()
        self._listeners: List[AccessListener] = []
        self.counting = True

    @classmethod
    def for_extension(cls, path: str, extension: Any,
                      page_size: int, leaf_codec: str = "f64",
                      **kwargs: Any) -> "FilePageFile":
        from repro.storage.codecs import IndexEntryCodec, make_leaf_codec
        codec = NodeCodec(page_size, make_leaf_codec(leaf_codec,
                                                     extension.dim),
                          IndexEntryCodec(extension.pred_codec()))
        return cls(path, codec, **kwargs)

    # -- id allocation ------------------------------------------------------

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def reserve(self, up_to: int) -> None:
        self._next_id = max(self._next_id, up_to + 1)

    # -- raw slot access -----------------------------------------------------

    def _slot_count(self) -> int:
        """Slots the file currently holds (slot 0 included)."""
        # fstat sees the OS file, not Python's write buffer — flush so
        # freshly written slots are counted.
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size // self.page_size

    def _read_raw(self, page_id: int) -> bytes:
        """The raw image bytes of a slot; typed errors, no decode."""
        if page_id < 1:
            raise PageMissingError("page ids start at 1", path=self.path,
                                   page_id=page_id)
        try:
            self._file.seek(page_id * self.page_size)
            image = self._file.read(self.page_size)
        except TransientIOError:
            raise
        except OSError as exc:
            if exc.errno in _TRANSIENT_ERRNOS:
                raise TransientIOError(
                    f"transient read failure: {exc}", path=self.path,
                    page_id=page_id) from exc
            raise
        if len(image) < self.page_size:
            raise PageMissingError("slot beyond end of file",
                                   path=self.path, page_id=page_id)
        return image

    def _write_raw(self, page_id: int, image: bytes) -> None:
        """Write raw image bytes into a slot (scrub/fault tooling)."""
        if len(image) != self.page_size:
            raise ValueError(
                f"image is {len(image)} bytes, slot holds {self.page_size}")
        self._file.seek(page_id * self.page_size)
        self._file.write(image)
        self._map_dirty = True

    # -- memory map ----------------------------------------------------------

    def _drop_map(self) -> None:
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # Decoded nodes still hold zero-copy views into the old
                # map; dropping our reference lets the GC unmap it once
                # the last view dies.
                pass
            self._map = None
            self._map_slots = 0

    def _ensure_map(self, min_slots: int) -> bool:
        """Map (or refresh) a read-only view of the file.

        Returns True when the map covers at least ``min_slots`` slots.
        Pending buffered writes are flushed first so the map sees them;
        in-place slot updates need no remap (the map and the descriptor
        share the OS page cache) — only file growth does.
        """
        if self._map_dirty:
            self._file.flush()
            self._map_dirty = False
        if self._map is not None and self._map_slots >= min_slots:
            return True
        slots = os.fstat(self._file.fileno()).st_size // self.page_size
        if slots != self._map_slots or self._map is None:
            self._drop_map()
            if slots:
                self._map = mmap.mmap(self._file.fileno(),
                                      slots * self.page_size,
                                      access=mmap.ACCESS_READ)
            self._map_slots = slots
        return self._map_slots >= min_slots

    def _read_view(self, page_id: int) -> memoryview:
        """A slot's image as a zero-copy view over the memory map."""
        if page_id < 1:
            raise PageMissingError("page ids start at 1", path=self.path,
                                   page_id=page_id)
        if not self._ensure_map(page_id + 1):
            raise PageMissingError("slot beyond end of file",
                                   path=self.path, page_id=page_id)
        assert self._map is not None
        start = page_id * self.page_size
        return memoryview(self._map)[start:start + self.page_size]

    def _slot_page_id(self, page_id: int) -> Optional[int]:
        """The page id stamped in a slot's header, or None if absent."""
        if page_id < 1 or page_id >= max(self._slot_count(), 1):
            return None
        self._file.seek(page_id * self.page_size)
        header = self._file.read(8)
        if len(header) < 8:
            return None
        return struct.unpack("<q", header)[0]

    # -- node access ----------------------------------------------------------

    def _node_from_image(self, page_id: int, image: Any, *,
                         verified: bool = False) -> Node:
        """Decode a page image (any buffer) into a :class:`Node`.

        Zero-copy: leaf bodies go through
        :meth:`LeafEntryCodec.decode_block` into a lazy
        :meth:`Node.leaf_from_arrays` — the key matrix and rid vector
        are views over ``image``, and per-entry objects only
        materialize if something walks ``node.entries``.  Inner nodes
        decode predicate by predicate as before (predicates copy out of
        the buffer by construction).  ``verified=True`` skips the seal
        check when a stacked :func:`verify_images` pass already ran.
        """
        if not verified and self.codec.checksums:
            verify_view(image, path=self.path, page_id=page_id)
        pid, level, count = struct.unpack_from("<qii", image, 0)
        if pid == -1:
            raise PageMissingError("slot was freed", path=self.path,
                                   page_id=page_id)
        if pid != page_id:
            raise PageCorruptError(f"slot holds page {pid}",
                                   path=self.path, page_id=page_id)
        codec = (self.codec.leaf_codec if level == 0
                 else self.codec.index_codec)
        nbytes = (codec.body_bytes(count) if level == 0
                  else count * codec.size)
        if count < 0 or PAGE_HEADER_SIZE + nbytes > len(image):
            raise PageCorruptError(
                f"entry count {count} overflows page "
                f"(level {level}, {codec.size}-byte entries)",
                path=self.path, page_id=page_id)
        body = image[PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + nbytes]
        if level == 0:
            try:
                keys, rids = codec.decode_block(body, count)
            except PageCorruptError as exc:
                raise PageCorruptError(str(exc), path=self.path,
                                       page_id=page_id) from None
            return Node.leaf_from_arrays(page_id, keys, rids)
        entries: List[IndexEntry] = []
        offset = 0
        try:
            for _ in range(count):
                pred, child = codec.decode(body[offset:offset + codec.size])
                entries.append(IndexEntry(pred, child))
                offset += codec.size
        except (struct.error, ValueError) as exc:
            raise PageCorruptError(
                f"undecodable entry at offset {PAGE_HEADER_SIZE + offset}: "
                f"{exc}", path=self.path, page_id=page_id) from None
        return Node(page_id, level, entries)

    def _read_image(self, page_id: int) -> Node:
        image = (self._read_view(page_id) if self.mmap_mode
                 else self._read_raw(page_id))
        return self._node_from_image(page_id, image)

    def read(self, page_id: int) -> Node:
        node = call_with_retry(lambda: self._read_image(page_id),
                               self.retry, sleep=self._sleep)
        if self.counting:
            self.stats.record_read(node.level)
            for listener in self._listeners:
                listener(page_id, node.level)
        return node

    def read_many(self, page_ids: Sequence[int]) -> List[Node]:
        """Counted bulk read: ``[self.read(p) for p in page_ids]``.

        Same counters, listener callbacks, and error behavior as that
        loop — pages are counted in request order, and the first
        failing page raises after the pages before it were counted —
        but each distinct slot decodes once (duplicates share the Node)
        and contiguous slot runs are fetched with a single pread (or
        sliced straight off the mmap) with their CRC seals verified in
        one stacked :func:`verify_images` pass.
        """
        page_ids = [int(p) for p in page_ids]
        outcomes = self._fetch_many(sorted(set(page_ids)))
        nodes: List[Node] = []
        for pid in page_ids:
            node = outcomes[pid]
            if isinstance(node, Exception):
                raise node
            if self.counting:
                self.stats.record_read(node.level)
                for listener in self._listeners:
                    listener(pid, node.level)
            nodes.append(node)
        return nodes

    def _fetch_many(self, unique_ids: List[int]) -> Dict[int, Any]:
        """Fetch + decode sorted unique slots; pid -> Node | error."""
        outcomes: Dict[int, Any] = {}
        valid: List[int] = []
        for pid in unique_ids:
            if pid < 1:
                outcomes[pid] = PageMissingError(
                    "page ids start at 1", path=self.path, page_id=pid)
            else:
                valid.append(pid)
        if valid:
            if self.mmap_mode:
                self._ensure_map(valid[-1] + 1)
                slots = self._map_slots
            else:
                slots = self._slot_count()
            while valid and valid[-1] >= slots:
                pid = valid.pop()
                outcomes[pid] = PageMissingError(
                    "slot beyond end of file", path=self.path, page_id=pid)
        start = 0
        for i in range(1, len(valid) + 1):
            if i == len(valid) or valid[i] != valid[i - 1] + 1:
                self._decode_run(valid[start:i], outcomes)
                start = i
        return outcomes

    def _decode_run(self, run: List[int],
                    outcomes: Dict[int, Any]) -> None:
        """Decode one contiguous slot run into per-page outcomes."""
        ps = self.page_size
        offset = run[0] * ps
        if self.mmap_mode:
            assert self._map is not None
            images = np.frombuffer(self._map, dtype=np.uint8,
                                   count=len(run) * ps,
                                   offset=offset).reshape(len(run), ps)
        else:
            def fetch() -> bytes:
                try:
                    self._file.seek(offset)
                    return self._file.read(len(run) * ps)
                except TransientIOError:
                    raise
                except OSError as exc:
                    if exc.errno in _TRANSIENT_ERRNOS:
                        raise TransientIOError(
                            f"transient read failure: {exc}",
                            path=self.path, page_id=run[0]) from exc
                    raise
            data = call_with_retry(fetch, self.retry, sleep=self._sleep)
            full = len(data) // ps
            for pid in run[full:]:
                outcomes[pid] = PageMissingError(
                    "slot beyond end of file", path=self.path, page_id=pid)
            run = run[:full]
            if not run:
                return
            images = np.frombuffer(data, dtype=np.uint8,
                                   count=full * ps).reshape(full, ps)
        batch_verified = self.codec.checksums and len(run) > 1
        bad = verify_images(images) if batch_verified else None
        for i, pid in enumerate(run):
            try:
                if bad is not None and bad[i]:
                    # Re-run the scalar check for the exact per-page
                    # error message the sequential path raises.
                    verify_view(images[i], path=self.path, page_id=pid)
                    raise PageCorruptError("checksum mismatch",
                                           path=self.path, page_id=pid)
                outcomes[pid] = self._node_from_image(
                    pid, images[i], verified=batch_verified)
            except (PageMissingError, PageCorruptError) as exc:
                outcomes[pid] = exc

    def record_access(self, page_id: int, level: int) -> None:
        """Count a query access without physical I/O (batch engine)."""
        if self.counting:
            self.stats.record_read(level)
            for listener in self._listeners:
                listener(page_id, level)

    def peek(self, page_id: int) -> Node:
        return call_with_retry(lambda: self._read_image(page_id),
                               self.retry, sleep=self._sleep)

    #: the parallel bulk loader may write disjoint page ranges of this
    #: store from forked workers (each through a private descriptor).
    supports_parallel_write = True

    def write(self, node: Node) -> None:
        entries = [tuple(e) for e in node.entries]
        image = self.codec.encode(node.page_id, node.level, entries)
        self._write_raw(node.page_id, image)
        self._levels[node.page_id] = node.level
        self.stats.writes += 1

    def write_many(self, nodes: Iterable[Node]) -> None:
        """Encode and write a batch of nodes in one pass.

        Slot-for-slot byte-identical to calling :meth:`write` per node:
        same codec, same seals — but leaf bodies are block-encoded,
        checksums run as one batched CRC pass, and contiguous page-id
        runs land with a single seek+write each.
        """
        nodes = list(nodes)
        if not nodes:
            return
        pages: List[Tuple[int, int, int, bytes]] = []
        for node in nodes:
            if node.level == 0:
                body = self.codec.leaf_codec.encode_block(
                    node.keys_array(), node.rid_array()) if len(node) else b""
            else:
                body = b"".join(self.codec.index_codec.encode(tuple(e))
                                for e in node.entries)
            pages.append((node.page_id, node.level, len(node), body))
        images = self.codec.encode_pages(pages)

        order = sorted(range(len(nodes)), key=lambda i: pages[i][0])
        tail: List[Optional[int]] = [*order, None]
        run: List[int] = []
        for i in tail:
            if run and (i is None
                        or pages[i][0] != pages[run[-1]][0] + 1):
                self._file.seek(pages[run[0]][0] * self.page_size)
                self._file.write(images[run].tobytes())
                run = []
            if i is not None:
                run.append(i)
        for node in nodes:
            self._levels[node.page_id] = node.level
        self.stats.writes += len(nodes)
        self._map_dirty = True

    def note_external_writes(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Account ``(page_id, level)`` pages another process wrote.

        The parallel bulk loader's forked workers write their shards
        through private descriptors; the parent calls this so its level
        map and write counters match a sequential build's.
        """
        for page_id, level in pairs:
            self._levels[page_id] = level
            self.stats.writes += 1

    def rebuild_slot_state(self) -> Tuple[List[int], List[int]]:
        """Rescan slot headers after reopening a mutated file.

        Neither the level map nor the free list is persisted, so a
        store opened over a file that previously saw inserts/deletes
        must rebuild both before allocating: otherwise freed slots leak
        and ``_levels`` misses live pages.  Returns ``(live, freed)``
        page-id lists.  Slots that are neither live nor stamped freed
        (all-zero gaps from an aborted allocation) are skipped — they
        stay unreusable but harmless.
        """
        live: List[int] = []
        freed: List[int] = []
        for slot in range(1, max(self._slot_count(), 1)):
            self._file.seek(slot * self.page_size)
            head = self._file.read(12)
            if len(head) < 12:
                break
            pid, level = struct.unpack("<qi", head)
            if pid == slot:
                self._levels[slot] = level
                live.append(slot)
            elif pid == -1:
                freed.append(slot)
        self._free = list(freed)
        return live, freed

    def free(self, page_id: int) -> None:
        # Stamp the slot with page id -1 (sealed) so stale reads fail
        # loudly with PageMissingError, never decode as live data.
        self._write_raw(page_id, self.codec.encode(-1, 0, []))
        self._levels.pop(page_id, None)
        self._free.append(page_id)

    def __contains__(self, page_id: int) -> bool:
        # Header-only membership: no body decode, so a corrupt-but-
        # present slot answers True and a freed slot (-1) answers False
        # without raising.
        try:
            return self._slot_page_id(page_id) == page_id
        except OSError:
            return False

    def page_ids(self) -> List[int]:
        """Live page ids, by scanning slot headers (reload-safe)."""
        return [pid for pid in range(1, max(self._slot_count(), 1))
                if self._slot_page_id(pid) == pid]

    def __len__(self) -> int:
        return len(self.page_ids())

    # -- listeners ----------------------------------------------------------

    def add_listener(self, listener: AccessListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self._listeners.remove(listener)

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._drop_map()
        self._file.close()

    def __enter__(self) -> "FilePageFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
