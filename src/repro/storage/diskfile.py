"""An on-disk page file: nodes live as real page images in one file.

`MemoryPageFile` accounts for I/O; `FilePageFile` actually performs it.
Every `read` seeks to the page's slot and decodes the fixed-size image
through the node codec, every `write` encodes and writes it back, so a
tree backed by this store runs with genuine disk-page granularity
(typically behind a :class:`~repro.storage.buffer.BufferPool`).
"""

from __future__ import annotations

import os
import struct
from typing import Dict, List, Optional

from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.node import Node
from repro.storage.codecs import NodeCodec
from repro.storage.pagefile import AccessListener, PageStats


class FilePageFile:
    """Page-granular node storage in a single binary file.

    Page ids map to fixed-size slots (`page_id * page_size`); slot 0 is
    reserved.  The codec comes from the tree's extension, so construct
    via :meth:`for_tree` or pass a prepared :class:`NodeCodec`.
    """

    def __init__(self, path: str, codec: NodeCodec):
        self.path = path
        self.codec = codec
        self.page_size = codec.page_size
        # "a+b" would force writes to the end regardless of seeks;
        # open read-write, creating the file when missing.
        if not os.path.exists(path):
            open(path, "wb").close()
        self._file = open(path, "r+b")
        self._next_id = max(1, os.path.getsize(path) // self.page_size)
        self._levels: Dict[int, int] = {}
        self._free: List[int] = []
        self.stats = PageStats()
        self._listeners: List[AccessListener] = []
        self.counting = True

    @classmethod
    def for_extension(cls, path: str, extension,
                      page_size: int) -> "FilePageFile":
        from repro.storage.codecs import IndexEntryCodec, LeafEntryCodec
        codec = NodeCodec(page_size, LeafEntryCodec(extension.dim),
                          IndexEntryCodec(extension.pred_codec()))
        return cls(path, codec)

    # -- id allocation ------------------------------------------------------

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def reserve(self, up_to: int) -> None:
        self._next_id = max(self._next_id, up_to + 1)

    # -- node access ----------------------------------------------------------

    def _read_image(self, page_id: int) -> Node:
        self._file.seek(page_id * self.page_size)
        image = self._file.read(self.page_size)
        if len(image) < self.page_size:
            raise KeyError(f"page {page_id} not in {self.path}")
        pid, level, raw_entries = self.codec.decode(image)
        if pid != page_id:
            raise KeyError(f"slot {page_id} holds page {pid}")
        if level == 0:
            entries = [LeafEntry(k, rid) for k, rid in raw_entries]
        else:
            entries = [IndexEntry(pred, child)
                       for pred, child in raw_entries]
        return Node(page_id, level, entries)

    def read(self, page_id: int) -> Node:
        node = self._read_image(page_id)
        if self.counting:
            self.stats.record_read(node.level)
            for listener in self._listeners:
                listener(page_id, node.level)
        return node

    def peek(self, page_id: int) -> Node:
        return self._read_image(page_id)

    def write(self, node: Node) -> None:
        entries = [tuple(e) for e in node.entries]
        image = self.codec.encode(node.page_id, node.level, entries)
        self._file.seek(node.page_id * self.page_size)
        self._file.write(image)
        self._levels[node.page_id] = node.level
        self.stats.writes += 1

    def free(self, page_id: int) -> None:
        # Stamp the slot with page id -1 so stale reads fail loudly.
        header = struct.pack("<qii", -1, 0, 0)
        self._file.seek(page_id * self.page_size)
        self._file.write(header + b"\x00" * (self.page_size - len(header)))
        self._levels.pop(page_id, None)
        self._free.append(page_id)

    def __contains__(self, page_id: int) -> bool:
        try:
            self._read_image(page_id)
            return True
        except KeyError:
            return False

    # -- listeners ----------------------------------------------------------

    def add_listener(self, listener: AccessListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self._listeners.remove(listener)

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
