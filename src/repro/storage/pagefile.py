"""Page files: node storage with access accounting.

Every node read during query processing flows through a page file, which
counts accesses per page and notifies registered listeners.  The amdb
profiler (:mod:`repro.amdb.profiler`) is such a listener: it attributes
each access to the query being executed.

:class:`MemoryPageFile` keeps decoded node objects in memory — the page
abstraction is about *accounting*, not about saving RAM — while
:class:`FilePageFile` (see :mod:`repro.storage.diskfile`) round-trips real
page images through the node codec for persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List

from repro.storage.errors import PageMissingError

AccessListener = Callable[[int, int], None]
"""Called as ``listener(page_id, level)`` on every counted access."""


@dataclass
class PageStats:
    """Cumulative access counters for one page file."""

    reads: int = 0
    writes: int = 0
    reads_by_level: Dict[int, int] = field(default_factory=dict)

    def record_read(self, level: int) -> None:
        self.reads += 1
        self.reads_by_level[level] = self.reads_by_level.get(level, 0) + 1

    @property
    def leaf_reads(self) -> int:
        return self.reads_by_level.get(0, 0)

    @property
    def inner_reads(self) -> int:
        return sum(n for lvl, n in self.reads_by_level.items() if lvl != 0)

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.reads_by_level.clear()


class MemoryPageFile:
    """In-memory node store with page-level access accounting."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Any] = {}
        self._next_id = 1
        self.stats = PageStats()
        self._listeners: List[AccessListener] = []
        #: when True, reads are counted; bulk loading and maintenance
        #: paths disable accounting so only query work is measured.
        self.counting = True

    # -- id allocation ------------------------------------------------------

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def reserve(self, up_to: int) -> None:
        """Ensure future allocations start above ``up_to`` (reload path)."""
        self._next_id = max(self._next_id, up_to + 1)

    # -- node access ----------------------------------------------------------

    def read(self, page_id: int) -> Any:
        """Fetch a node, counting the access when accounting is on."""
        node = self._get(page_id)
        if self.counting:
            self.stats.record_read(node.level)
            for listener in self._listeners:
                listener(page_id, node.level)
        return node

    def record_access(self, page_id: int, level: int) -> None:
        """Count a query access without re-fetching the node.

        The batch query engine decodes each page once per query block
        but must account one logical read per query that visits it, so
        repeat visitors book their access here — same counters, same
        listener notifications as :meth:`read`, no fetch.
        """
        if self.counting:
            self.stats.record_read(level)
            for listener in self._listeners:
                listener(page_id, level)

    def read_many(self, page_ids: Iterable[int]) -> List[Any]:
        """Counted bulk read: ``[self.read(p) for p in page_ids]``.

        In-memory nodes need no gathering or decode, so this *is* the
        sequential loop — it exists so every store answers the same
        bulk-read protocol with identical counting semantics.
        """
        return [self.read(page_id) for page_id in page_ids]

    def peek(self, page_id: int) -> Any:
        """Fetch a node without counting (maintenance / analysis paths)."""
        return self._get(page_id)

    def _get(self, page_id: int) -> Any:
        try:
            return self._nodes[page_id]
        except KeyError:
            raise PageMissingError("no such page",
                                   page_id=page_id) from None

    def write(self, node: Any) -> None:
        self._nodes[node.page_id] = node
        self.stats.writes += 1

    def write_many(self, nodes: Iterable[Any]) -> None:
        """Store a batch of nodes (bulk-load write path)."""
        for node in nodes:
            self.write(node)

    def free(self, page_id: int) -> None:
        del self._nodes[page_id]

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def page_ids(self) -> List[int]:
        return list(self._nodes)

    # -- listeners ----------------------------------------------------------

    def add_listener(self, listener: AccessListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self._listeners.remove(listener)

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """No-op: an in-memory store has nothing to sync."""

    def close(self) -> None:
        """No-op: an in-memory store holds no OS resources."""

    def __enter__(self) -> "MemoryPageFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
