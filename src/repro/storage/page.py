"""Fixed-size page layout constants.

Every tree node occupies exactly one page.  A page holds a small header
followed by a packed array of fixed-size entries; the number of entries
that fit (the fanout) therefore falls directly out of the predicate codec
sizes, which is how the paper's Table 3 predicate sizes translate into
tree heights.
"""

from __future__ import annotations

#: Bytes reserved at the front of every page: page id (8), level (4),
#: entry count (4), flags/reserved (16).  Matches the order of magnitude
#: of real systems; the exact split is irrelevant to the experiments.
PAGE_HEADER_SIZE = 32


def page_payload(page_size: int) -> int:
    """Usable entry bytes in a page of ``page_size`` bytes."""
    if page_size <= PAGE_HEADER_SIZE:
        raise ValueError(f"page size {page_size} smaller than header")
    return page_size - PAGE_HEADER_SIZE


def entries_per_page(page_size: int, entry_size: int) -> int:
    """Maximum number of fixed-size entries a page can hold."""
    if entry_size <= 0:
        raise ValueError(f"non-positive entry size {entry_size}")
    fanout = page_payload(page_size) // entry_size
    if fanout < 2:
        raise ValueError(
            f"page size {page_size} holds {fanout} entries of "
            f"{entry_size} bytes; a tree needs fanout >= 2")
    return fanout
