"""Disk cost model backing the paper's flat-file break-even analysis.

Section 3.2 (footnote 4) derives a ≈15:1 random-to-sequential I/O cost
ratio from measurements of a Seagate Barracuda ultra-wide SCSI-2 drive
under Windows NT [19]: 9 MB/s sequential throughput, 7.1 ms average seek,
4.17 ms rotational delay, 8 KB transfers.  :class:`DiskModel` reproduces
that arithmetic and answers the experiment's question: what fraction of
an index's pages may a workload touch before a flat-file scan wins?
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Analytic model of a disk drive for page-granularity I/O.

    Defaults are the paper's Barracuda parameters.
    """

    seek_ms: float = 7.1
    rotational_ms: float = 4.17
    throughput_mb_s: float = 9.0
    page_size: int = 8192

    @property
    def transfer_ms(self) -> float:
        """Time to move one page's bytes at sequential throughput."""
        return self.page_size / (self.throughput_mb_s * 1e6) * 1e3

    @property
    def random_io_ms(self) -> float:
        """Seek + rotational delay + transfer for one random page read."""
        return self.seek_ms + self.rotational_ms + self.transfer_ms

    @property
    def sequential_io_ms(self) -> float:
        """Per-page cost of a streaming scan."""
        return self.transfer_ms

    @property
    def random_to_sequential_ratio(self) -> float:
        """How many sequential page reads one random read costs.

        With the paper's parameters this is ≈13.4, which the paper rounds
        to "around 15x" / "14 sequential I/Os for each random I/O".
        """
        return self.random_io_ms / self.sequential_io_ms

    # -- workload-level costs ------------------------------------------------

    def scan_ms(self, num_pages: int) -> float:
        """Cost of a full sequential scan of ``num_pages`` (one seek)."""
        return self.seek_ms + self.rotational_ms \
            + num_pages * self.sequential_io_ms

    def random_reads_ms(self, num_reads: int) -> float:
        """Cost of ``num_reads`` independent random page reads."""
        return num_reads * self.random_io_ms

    def breakeven_fraction(self) -> float:
        """Largest fraction of pages an AM may touch and still beat a scan.

        The paper states the AM "must not hit more than one fifteenth of
        the leaf-level pages" — i.e. the reciprocal of the random:
        sequential ratio.
        """
        return 1.0 / self.random_to_sequential_ratio

    def index_beats_scan(self, pages_touched: int, total_pages: int) -> bool:
        """Does touching ``pages_touched`` at random beat scanning all?"""
        return self.random_reads_ms(pages_touched) \
            < self.scan_ms(total_pages)
