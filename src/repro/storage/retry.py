"""Bounded, jittered exponential backoff for transient storage faults.

Only :class:`~repro.storage.errors.TransientIOError` is retried — a
corrupt page stays corrupt no matter how often it is reread, but an
interrupted syscall or an injected transient fault deserves another try.
Delays grow geometrically, are capped, and carry deterministic seeded
jitter so fault-injection tests reproduce exactly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from repro.storage.errors import TransientIOError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient fault."""

    #: total attempts, including the first (1 = no retry).
    attempts: int = 4
    #: delay before the first retry, in seconds.
    base_delay: float = 0.001
    #: geometric growth factor between retries.
    multiplier: float = 2.0
    #: hard cap on any single delay, in seconds.
    max_delay: float = 0.050
    #: +/- fraction of the delay drawn as jitter ([0, 1)).
    jitter: float = 0.25
    #: seed for the jitter stream (deterministic per call).
    seed: int = 0

    def delays(self) -> Iterator[float]:
        """The backoff schedule: ``attempts - 1`` jittered delays."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(max(0, self.attempts - 1)):
            spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(delay, self.max_delay) * spread
            delay *= self.multiplier


def call_with_retry(fn: Callable[[], T], policy: Optional[RetryPolicy],
                    sleep: Callable[[float], None] = time.sleep) -> T:
    """Call ``fn``, retrying on :class:`TransientIOError` per ``policy``.

    With ``policy=None`` (or a single-attempt policy) the call is made
    exactly once.  The last failure propagates unchanged once the
    attempt budget is exhausted.
    """
    if policy is None or policy.attempts <= 1:
        return fn()
    delays = policy.delays()
    while True:
        try:
            return fn()
        except TransientIOError:
            delay = next(delays, None)
            if delay is None:
                raise
            sleep(delay)
