"""Fork-pool plumbing shared by parallel execution paths.

Both the parallel workload runner (:mod:`repro.workload.runner`) and the
parallel bulk loader (:mod:`repro.bulk.loader`) follow the same pattern:
stash shared state in a module global, fork one worker per contiguous
shard (fork shares the state copy-on-write; a Pool argument would have
to pickle trees and page files, which cannot be pickled), and merge the
outcomes in shard order so results are deterministic regardless of which
worker finished first.  The store-handling helpers here are the part
both sides need verbatim.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Any, List, Tuple


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus(cgroup_root: str = "/sys/fs/cgroup") -> int:
    """CPUs this process may actually run on.

    The scheduling affinity mask respects ``taskset`` and cpuset
    pinning, but a containerized process usually gets throttled by a
    cgroup CPU *quota* instead — the affinity mask still shows every
    host core.  Both limits are read and the smaller wins: CPU-bound
    fork workers beyond it only add scheduling (or throttling)
    overhead, so parallel paths clamp their effective worker count to
    this number unless explicitly asked to oversubscribe.

    ``cgroup_root`` exists for tests; production callers use the
    default mount point.
    """
    try:
        affinity = len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        affinity = os.cpu_count() or 1
    quota = _cgroup_cpu_quota(cgroup_root)
    if quota:
        return min(affinity, quota)
    return affinity


def _cgroup_cpu_quota(root: str) -> int:
    """Whole CPUs the cgroup CPU controller allows (0 = unlimited).

    cgroup v2 publishes ``cpu.max`` as ``"<quota> <period>"`` in
    microseconds (quota ``max`` = unlimited); v1 splits the same pair
    across ``cpu/cpu.cfs_quota_us`` (-1 = unlimited) and
    ``cpu/cpu.cfs_period_us``.  Fractional quotas round up — a
    1.5-CPU container can keep two workers busy part-time, while
    rounding down to one would idle guaranteed bandwidth.
    """
    try:
        with open(os.path.join(root, "cpu.max")) as f:
            fields = f.read().split()
        if fields and fields[0] != "max":
            quota_us = int(fields[0])
            period_us = int(fields[1]) if len(fields) > 1 else 100_000
            if quota_us > 0 and period_us > 0:
                return max(1, math.ceil(quota_us / period_us))
        if fields:
            return 0
    except (OSError, ValueError):
        pass
    try:
        with open(os.path.join(root, "cpu", "cpu.cfs_quota_us")) as f:
            quota_us = int(f.read().strip())
        if quota_us <= 0:
            return 0
        with open(os.path.join(root, "cpu", "cpu.cfs_period_us")) as f:
            period_us = int(f.read().strip())
        if period_us > 0:
            return max(1, math.ceil(quota_us / period_us))
    except (OSError, ValueError):
        pass
    return 0


def shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``workers`` contiguous near-even shards."""
    per, extra = divmod(n, workers)
    bounds, start = [], 0
    for i in range(workers):
        size = per + (1 if i < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size
    return bounds


def store_chain(store: Any) -> List[Any]:
    """The store and every layer it wraps, outermost first."""
    chain: List[Any] = []
    seen: set = set()
    layer = store
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        chain.append(layer)
        layer = getattr(layer, "inner", None) \
            or getattr(layer, "pagefile", None)
    return chain


def reopen_files(store: Any) -> None:
    """Give every file-backed layer a private file object.

    A forked child inherits the parent's descriptors, and with them the
    *shared* file offset — two workers seeking the same description
    would race.  Reopening by path creates an independent description;
    the inherited object is abandoned unclosed so its buffer can't
    flush stray bytes at a shared offset.
    """
    for layer in store_chain(store):
        if getattr(layer, "_file", None) is not None \
                and getattr(layer, "path", None) is not None:
            layer._file = open(layer.path, "r+b")
