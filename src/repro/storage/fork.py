"""Fork-pool plumbing shared by parallel execution paths.

Both the parallel workload runner (:mod:`repro.workload.runner`) and the
parallel bulk loader (:mod:`repro.bulk.loader`) follow the same pattern:
stash shared state in a module global, fork one worker per contiguous
shard (fork shares the state copy-on-write; a Pool argument would have
to pickle trees and page files, which cannot be pickled), and merge the
outcomes in shard order so results are deterministic regardless of which
worker finished first.  The store-handling helpers here are the part
both sides need verbatim.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, List, Tuple


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers the scheduling affinity mask (which respects container
    quotas and ``taskset``) over the raw core count.  CPU-bound fork
    workers beyond this number only add scheduling overhead, so
    parallel paths clamp their effective worker count to it unless
    explicitly asked to oversubscribe.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``workers`` contiguous near-even shards."""
    per, extra = divmod(n, workers)
    bounds, start = [], 0
    for i in range(workers):
        size = per + (1 if i < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size
    return bounds


def store_chain(store: Any) -> List[Any]:
    """The store and every layer it wraps, outermost first."""
    chain: List[Any] = []
    seen: set = set()
    layer = store
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        chain.append(layer)
        layer = getattr(layer, "inner", None) \
            or getattr(layer, "pagefile", None)
    return chain


def reopen_files(store: Any) -> None:
    """Give every file-backed layer a private file object.

    A forked child inherits the parent's descriptors, and with them the
    *shared* file offset — two workers seeking the same description
    would race.  Reopening by path creates an independent description;
    the inherited object is abandoned unclosed so its buffer can't
    flush stray bytes at a shared offset.
    """
    for layer in store_chain(store):
        if getattr(layer, "_file", None) is not None \
                and getattr(layer, "path", None) is not None:
            layer._file = open(layer.path, "r+b")
