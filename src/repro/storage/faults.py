"""Deterministic storage fault injection.

:class:`FaultyPageFile` wraps any store satisfying
:class:`~repro.storage.PageFileProtocol` and injects failures described
by a declarative :class:`FaultPolicy`, drawn from a seeded RNG — the
same seed always produces the same fault sequence, so every failure
mode the resilience layer claims to handle is reproducible in a test:

- **transient read faults** (:class:`TransientIOError`): either
  rate-based or forced per-page counts ("the next n reads of page 7
  fail"), to exercise retry-with-backoff;
- **bit flips**: when the wrapped store exposes raw slot images
  (``FilePageFile``), one randomly chosen bit of the image is flipped
  *in memory* and the flipped image decoded through the real codec, so
  detection is exactly what the CRC32C seal provides; stores without
  raw access model the already-detected outcome
  (:class:`PageCorruptError`);
- **torn writes**: the slot's tail is zeroed after the write (the
  classic power-cut half-page), persistently breaking the seal; without
  raw access the page is marked torn and poisoned for future reads;
- **dropped writes**: the write is silently discarded (lost-write
  model; a later read returns the previous version);
- **stale reads**: a previously written version of the node is served
  (firmware cache bug model).

Injection happens only on the counted ``read``/``write`` paths — the
maintenance ``peek`` path stays honest so trees can still be inspected
while misbehaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.storage.errors import (PageCorruptError, StorageError,
                                  TransientIOError)


class CrashError(StorageError):
    """The process "died" at an injected crash point.

    Raised by :class:`CrashInjector` to model a kill -9 mid-mutation:
    whatever bytes were written before the crash point stay on disk,
    everything after it is lost.  Holders of the crashed store must
    discard it and re-open through recovery
    (:func:`repro.storage.wal.recover`).
    """


@dataclass
class CrashPoint:
    """Where (and how) one injected crash fires.

    ``point`` names a location in the WAL commit protocol:

    - ``"mid-append"``: while appending log records — the record being
      written persists only a ``torn`` fraction of its bytes, so replay
      sees a torn tail and the transaction never commits;
    - ``"pre-apply"``: after the commit record is fsynced but before
      any page image reaches the data file — the transaction is durable
      in the log only;
    - ``"mid-apply"``: between page writes of the apply phase — the
      data file holds a half-applied transaction (the page being
      written persists a ``torn`` fraction).

    ``after`` skips that many matching crash-point hits first, so the
    crash can land in any transaction of a workload, not just the
    first.
    """

    point: str = "mid-apply"
    #: matching hits to survive before firing.
    after: int = 0
    #: fraction of the in-flight record/page persisted before dying.
    torn: float = 0.5


class CrashInjector:
    """Arms one :class:`CrashPoint`; fires once, then stays quiet.

    The WAL commit path calls :meth:`check` at each crash point with an
    optional ``partial`` callback that persists a torn prefix of the
    in-flight record or page; firing invokes the callback and raises
    :class:`CrashError`.
    """

    def __init__(self, point: CrashPoint) -> None:
        self.point = point
        self.remaining = point.after
        self.fired = False

    def check(self, point: str,
              partial: Optional[Callable[[float], None]] = None) -> None:
        """Die here if this is the armed crash point's turn."""
        if self.fired or point != self.point.point:
            return
        if self.remaining > 0:
            self.remaining -= 1
            return
        self.fired = True
        if partial is not None and self.point.torn > 0.0:
            partial(self.point.torn)
        raise CrashError(f"injected crash at {point!r}")


@dataclass
class FaultPolicy:
    """Declarative description of what to inject, and how often.

    All rates are probabilities in [0, 1] evaluated per operation from
    the seeded RNG; ``transient_reads`` forces deterministic per-page
    fault counts regardless of rates.
    """

    seed: int = 0
    #: page id -> number of forced TransientIOErrors before success.
    transient_reads: Dict[int, int] = field(default_factory=dict)
    #: probability a read raises TransientIOError.
    transient_read_rate: float = 0.0
    #: probability a read sees a single flipped bit in its page image.
    bitflip_read_rate: float = 0.0
    #: probability a read returns a stale (previous) node version.
    stale_read_rate: float = 0.0
    #: probability a write persists only its leading half (torn).
    torn_write_rate: float = 0.0
    #: probability a write is silently dropped (lost write).
    drop_write_rate: float = 0.0
    #: stop injecting rate-based faults after this many (None = never).
    max_faults: Optional[int] = None


@dataclass
class FaultLog:
    """Counters of injected faults, for test assertions."""

    transient: int = 0
    bitflips: int = 0
    stale: int = 0
    torn: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        return (self.transient + self.bitflips + self.stale
                + self.torn + self.dropped)


class FaultyPageFile:
    """A page file that misbehaves on purpose.

    Conforms to the page-file interface, so it can sit anywhere a real
    store does — typically between a :class:`BufferPool` (whose retry
    masks the transients) and a :class:`FilePageFile` (whose checksums
    catch the flips).
    """

    def __init__(self, inner: Any, policy: Optional[FaultPolicy] = None,
                 **policy_kwargs: Any) -> None:
        self.inner = inner
        self.policy = policy if policy is not None \
            else FaultPolicy(**policy_kwargs)
        self._rng = random.Random(self.policy.seed)
        self._pending_transients = dict(self.policy.transient_reads)
        #: page id -> previous node version (stale-read source).
        self._shadow: Dict[int, Any] = {}
        #: pages whose write was torn, for stores without raw access.
        self._torn: Set[int] = set()
        self.injected = FaultLog()

    # -- fault machinery -----------------------------------------------------

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if (self.policy.max_faults is not None
                and self.injected.total >= self.policy.max_faults):
            return False
        return self._rng.random() < rate

    def fail_next_reads(self, page_id: int, count: int) -> None:
        """Force the next ``count`` reads of ``page_id`` to be transient
        failures (imperative alternative to the policy mapping)."""
        self._pending_transients[page_id] = \
            self._pending_transients.get(page_id, 0) + count

    def corrupt_page(self, page_id: int, bit: Optional[int] = None) -> int:
        """Persistently flip one bit of a slot (requires raw access).

        Returns the flipped bit index.  Reads of the page then raise
        :class:`PageCorruptError` until it is rewritten.
        """
        image = self.inner._read_raw(page_id)
        if bit is None:
            bit = self._rng.randrange(len(image) * 8)
        self.inner._write_raw(page_id, _flip_bit(image, bit))
        return bit

    # -- node access ---------------------------------------------------------

    def read(self, page_id: int) -> Any:
        pending = self._pending_transients.get(page_id, 0)
        if pending > 0:
            self._pending_transients[page_id] = pending - 1
            self.injected.transient += 1
            raise TransientIOError("injected transient read fault",
                                   page_id=page_id)
        if self._roll(self.policy.transient_read_rate):
            self.injected.transient += 1
            raise TransientIOError("injected transient read fault",
                                   page_id=page_id)
        if (page_id in self._shadow
                and self._roll(self.policy.stale_read_rate)):
            self.injected.stale += 1
            return self._shadow[page_id]
        if page_id in self._torn:
            raise PageCorruptError("injected torn write", page_id=page_id)
        if self._roll(self.policy.bitflip_read_rate):
            self.injected.bitflips += 1
            if hasattr(self.inner, "_read_raw"):
                image = self.inner._read_raw(page_id)
                image = _flip_bit(image, self._rng.randrange(len(image) * 8))
                # Decode the flipped image through the real codec: with
                # checksums on this raises PageCorruptError; with them
                # off it may decode garbage silently — surface that as
                # corruption too, since the flip *was* injected.
                self.inner.codec.decode(image)
                raise PageCorruptError(
                    "injected bit flip decoded silently — "
                    "checksums are off", page_id=page_id)
            raise PageCorruptError("injected bit flip", page_id=page_id)
        return self.inner.read(page_id)

    def read_many(self, page_ids: Iterable[int]) -> List[Any]:
        """Bulk read with per-page fault injection.

        Deliberately *not* delegated to the inner store's bulk path:
        each page goes through :meth:`read` in request order, so the
        seeded fault sequence — and therefore every test built on it —
        is identical whether a caller reads pages one at a time or in
        a batch.
        """
        return [self.read(page_id) for page_id in page_ids]

    def record_access(self, page_id: int, level: int) -> None:
        self.inner.record_access(page_id, level)

    def peek(self, page_id: int) -> Any:
        return self.inner.peek(page_id)

    def write(self, node: Any) -> None:
        if self._roll(self.policy.drop_write_rate):
            self.injected.dropped += 1
            return
        try:
            previous = self.inner.peek(node.page_id)
        except StorageError:
            previous = None
        self.inner.write(node)
        if previous is not None:
            self._shadow[node.page_id] = previous
        if self._roll(self.policy.torn_write_rate):
            self.injected.torn += 1
            if hasattr(self.inner, "_read_raw"):
                image = self.inner._read_raw(node.page_id)
                half = len(image) // 2
                self.inner._write_raw(
                    node.page_id, image[:half] + b"\x00" * (len(image) - half))
            else:
                self._torn.add(node.page_id)

    def write_many(self, nodes: Iterable[Any]) -> None:
        """Batch write through the per-node fault path.

        Like :meth:`read_many`, deliberately not delegated to the inner
        store's bulk path: each node goes through :meth:`write` in
        order, so the seeded fault sequence is identical whether a
        caller writes pages one at a time or in a batch.
        """
        for node in nodes:
            self.write(node)

    def free(self, page_id: int) -> None:
        self._shadow.pop(page_id, None)
        self._torn.discard(page_id)
        self.inner.free(page_id)

    # -- passthroughs --------------------------------------------------------

    def allocate(self) -> int:
        return self.inner.allocate()

    def reserve(self, up_to: int) -> None:
        self.inner.reserve(up_to)

    def page_ids(self) -> List[int]:
        return self.inner.page_ids()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def stats(self) -> Any:
        return self.inner.stats

    @property
    def counting(self) -> bool:
        return self.inner.counting

    @counting.setter
    def counting(self, value: bool) -> None:
        self.inner.counting = value

    def add_listener(self, listener: Callable[[int, int], None]) -> None:
        self.inner.add_listener(listener)

    def remove_listener(self, listener: Callable[[int, int], None]) -> None:
        self.inner.remove_listener(listener)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "FaultyPageFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _flip_bit(image: bytes, bit: int) -> bytes:
    """``image`` with bit ``bit`` (0 = LSB of byte 0) inverted."""
    byte, offset = divmod(bit, 8)
    flipped = image[byte] ^ (1 << offset)
    return image[:byte] + bytes([flipped]) + image[byte + 1:]
