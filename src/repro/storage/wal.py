"""Write-ahead logging and redo recovery for mutable page files.

The sealed-page storage stack (:mod:`repro.storage.diskfile`) writes
nodes in place; an insert or delete touches several pages plus the
superblock, and a crash between those writes leaves the index file
inconsistent.  This module makes mutation atomic and durable:

- :class:`WriteAheadLog` — an append-only sidecar file (``<index>.wal``)
  of CRC32C-sealed records with monotonically increasing LSNs.  A
  transaction is a run of ``PAGE`` records (full post-images, one per
  dirtied slot — frees are images stamped with page id -1) followed by
  one ``COMMIT`` record whose payload is the complete superblock page-0
  image.  An fsync barrier after the commit record makes the
  transaction durable before any data-file byte changes.

- :class:`WALPageFile` — wraps a :class:`~repro.storage.BufferPool` or
  :class:`~repro.storage.diskfile.FilePageFile` and stages writes in a
  transaction overlay: ``begin()``, tree mutation, then ``commit()``
  encodes the staged nodes once, logs them, fsyncs, and only then
  applies the images to the data file (invalidating buffer-pool frames
  as it goes).  Reads during a transaction see the overlay; snapshots
  (:meth:`WALPageFile.snapshot`) see copy-on-write page versions pinned
  to the last committed LSN, so concurrent query batches never observe
  a half-applied transaction.

- :func:`recover` — redo recovery: scan the log, truncate any torn
  tail (a record whose seal fails, mid-write casualty of the crash),
  and rewrite every page image of every *committed* transaction into
  the data file.  Redo is pure image replay, so it is idempotent:
  replaying the same log twice produces byte-identical files.

Crash points (:class:`~repro.storage.faults.CrashPoint`) hook the
commit protocol at the three windows that matter — mid-append,
post-commit-pre-apply, mid-apply — and the kill-and-recover harness
(:mod:`repro.workload.crash`) proves every one recovers clean.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.storage.errors import (PageCorruptError, PageMissingError,
                                  StorageError)
from repro.storage.faults import CrashError, CrashInjector
from repro.storage.integrity import crc32c
from repro.storage.pagefile import AccessListener

#: sidecar log file header: magic, then ``<II`` (version, page_size).
_WAL_MAGIC = b"repro-wal-v1\x00\x00\x00\x00"
_WAL_VERSION = 1
_FILE_HEADER = struct.Struct("<II")
_HEADER_SIZE = len(_WAL_MAGIC) + _FILE_HEADER.size

#: per-record header: record magic, lsn, txn id, record type, page id,
#: payload length, crc32c (over the header with crc zeroed + payload).
_RECORD = struct.Struct("<IQQIqII")
_RECORD_MAGIC = 0x57414C52  # "WALR"

#: record types.
REC_PAGE = 1
REC_COMMIT = 2


def default_wal_path(path: str) -> str:
    """The sidecar log path for an index file."""
    return path + ".wal"


def _seal_record(lsn: int, txn: int, rtype: int, page_id: int,
                 payload: bytes) -> bytes:
    header = _RECORD.pack(_RECORD_MAGIC, lsn, txn, rtype, page_id,
                          len(payload), 0)
    crc = crc32c(payload, crc32c(header))
    return _RECORD.pack(_RECORD_MAGIC, lsn, txn, rtype, page_id,
                        len(payload), crc) + payload


@dataclass
class WALScan:
    """What a replay scan of the log found."""

    page_size: int = 0
    #: committed transactions in commit order:
    #: (txn id, [(page_id, image), ...], superblock image or b"").
    committed: List[Tuple[int, List[Tuple[int, bytes]], bytes]] = \
        field(default_factory=list)
    #: transactions with PAGE records but no COMMIT (never durable).
    uncommitted: int = 0
    records: int = 0
    last_lsn: int = 0
    #: byte offset of the end of the last well-formed record.
    valid_bytes: int = _HEADER_SIZE
    #: torn-tail bytes after ``valid_bytes`` (0 when the log is whole).
    truncated_bytes: int = 0


def scan_wal(path: str) -> WALScan:
    """Parse the log sequentially, stopping at the first damaged record.

    A record that is short, bears a wrong magic, fails its CRC seal, or
    carries an implausible payload length marks the torn tail: it and
    everything after it were in flight when the process died, and since
    the commit record is the *last* record of its transaction, nothing
    durable can follow a tear — the scan stops there and reports the
    tail length for truncation.
    """
    with open(path, "rb") as f:
        raw = f.read()
    if len(raw) < _HEADER_SIZE or raw[:len(_WAL_MAGIC)] != _WAL_MAGIC:
        raise PageCorruptError("not a repro WAL file (bad header)",
                               path=path)
    version, page_size = _FILE_HEADER.unpack_from(raw, len(_WAL_MAGIC))
    if version != _WAL_VERSION:
        raise PageCorruptError(f"unsupported WAL version {version}",
                               path=path)
    if page_size <= 0:
        raise PageCorruptError(f"implausible WAL page size {page_size}",
                               path=path)
    scan = WALScan(page_size=page_size)
    open_txns: Dict[int, List[Tuple[int, bytes]]] = {}
    offset = _HEADER_SIZE
    while offset + _RECORD.size <= len(raw):
        magic, lsn, txn, rtype, page_id, plen, crc = \
            _RECORD.unpack_from(raw, offset)
        end = offset + _RECORD.size + plen
        if (magic != _RECORD_MAGIC or plen > 4 * page_size
                or end > len(raw)):
            break
        payload = raw[offset + _RECORD.size:end]
        header = _RECORD.pack(magic, lsn, txn, rtype, page_id, plen, 0)
        if crc32c(payload, crc32c(header)) != crc:
            break
        if rtype == REC_PAGE and plen == page_size and page_id >= 1:
            open_txns.setdefault(txn, []).append((page_id, payload))
        elif rtype == REC_COMMIT and plen in (0, page_size):
            scan.committed.append(
                (txn, open_txns.pop(txn, []), payload))
        else:
            break
        scan.records += 1
        scan.last_lsn = lsn
        offset = end
        scan.valid_bytes = offset
    scan.truncated_bytes = len(raw) - scan.valid_bytes
    scan.uncommitted = len(open_txns)
    return scan


class WriteAheadLog:
    """The append-only redo log sitting beside an index file.

    Opening for append validates the file header (creating the file
    when missing) and truncates any torn tail left by a crash, so every
    record the log holds while it is open is well-formed.
    """

    def __init__(self, path: str, page_size: int,
                 injector: Optional[CrashInjector] = None) -> None:
        self.path = path
        self.page_size = page_size
        self.injector = injector
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            with open(path, "wb") as f:
                f.write(_WAL_MAGIC
                        + _FILE_HEADER.pack(_WAL_VERSION, page_size))
                f.flush()
                os.fsync(f.fileno())
            self._next_lsn = 1
            self._end = _HEADER_SIZE
        else:
            scan = scan_wal(path)
            if scan.page_size != page_size:
                raise PageCorruptError(
                    f"WAL page size {scan.page_size} does not match "
                    f"index page size {page_size}", path=path)
            self._next_lsn = scan.last_lsn + 1
            self._end = scan.valid_bytes
            if scan.truncated_bytes:
                with open(path, "r+b") as f:
                    f.truncate(scan.valid_bytes)
        self._file = open(path, "r+b")
        self._file.seek(self._end)

    def size_bytes(self) -> int:
        """Bytes of log past the file header."""
        return self._end - _HEADER_SIZE

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def _write_partial(self, record: bytes, fraction: float) -> None:
        """Persist a torn prefix of a record (crash injection only)."""
        keep = max(0, min(len(record) - 1, int(len(record) * fraction)))
        self._file.write(record[:keep])
        self._file.flush()

    def append_transaction(self, txn: int,
                           pages: Iterable[Tuple[int, bytes]],
                           commit_image: bytes) -> int:
        """Log one transaction and fsync; returns the commit LSN.

        ``pages`` are (page_id, post-image) pairs; ``commit_image`` is
        the complete superblock page-0 image (or ``b""`` to leave the
        superblock untouched on redo).  Nothing is durable until the
        final fsync returns; the ``mid-append`` crash point fires
        before individual record writes, persisting a torn record.
        """
        written = 0
        for page_id, image in pages:
            if len(image) != self.page_size:
                raise ValueError(
                    f"page image is {len(image)} bytes, "
                    f"pages are {self.page_size}")
            record = _seal_record(self._next_lsn, txn, REC_PAGE,
                                  page_id, image)
            if self.injector is not None:
                self.injector.check(
                    "mid-append",
                    lambda frac, rec=record: self._write_partial(rec, frac))
            self._file.write(record)
            self._next_lsn += 1
            written += len(record)
        record = _seal_record(self._next_lsn, txn, REC_COMMIT, 0,
                              commit_image)
        if self.injector is not None:
            self.injector.check(
                "mid-append",
                lambda frac, rec=record: self._write_partial(rec, frac))
        self._file.write(record)
        commit_lsn = self._next_lsn
        self._next_lsn += 1
        written += len(record)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._end += written
        return commit_lsn

    def reset(self) -> None:
        """Checkpoint: discard all records (data file must be synced).

        Callers must fsync the data file *first* — after the truncate,
        the log can no longer redo anything.
        """
        self._file.truncate(_HEADER_SIZE)
        self._file.seek(_HEADER_SIZE)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._end = _HEADER_SIZE

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class RecoveryReport:
    """What :func:`recover` did to bring an index file current."""

    path: str
    wal_path: str
    records_scanned: int = 0
    transactions_applied: int = 0
    transactions_uncommitted: int = 0
    pages_applied: int = 0
    truncated_bytes: int = 0
    checkpointed: bool = False

    @property
    def clean_log(self) -> bool:
        """True when the log held no torn tail and no orphan records."""
        return self.truncated_bytes == 0 and \
            self.transactions_uncommitted == 0

    def format(self) -> str:
        lines = [f"recover {self.path}",
                 f"wal          : {self.wal_path}",
                 f"records      : {self.records_scanned} scanned, "
                 f"{self.truncated_bytes} torn-tail bytes truncated",
                 f"transactions : {self.transactions_applied} replayed, "
                 f"{self.transactions_uncommitted} uncommitted discarded",
                 f"pages        : {self.pages_applied} images rewritten"]
        if self.checkpointed:
            lines.append("wal          : checkpointed (log reset)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "wal_path": self.wal_path,
                "records_scanned": self.records_scanned,
                "transactions_applied": self.transactions_applied,
                "transactions_uncommitted": self.transactions_uncommitted,
                "pages_applied": self.pages_applied,
                "truncated_bytes": self.truncated_bytes,
                "checkpointed": self.checkpointed}


def recover(path: str, wal_path: Optional[str] = None,
            checkpoint: bool = True) -> RecoveryReport:
    """Redo recovery: replay committed transactions into ``path``.

    Scans the sidecar log, truncates any torn tail, and rewrites every
    page image (and superblock) of every committed transaction, in
    commit order.  Uncommitted transactions are discarded — their page
    records never became durable intent.  Pure image replay makes this
    idempotent: with ``checkpoint=False`` the log is left untouched and
    running recovery again yields a byte-identical data file.

    With ``checkpoint=True`` (the default) the data file is fsynced and
    the log reset afterwards, so the next crash replays only new work.
    A missing or empty log is a clean no-op.
    """
    if wal_path is None:
        wal_path = default_wal_path(path)
    report = RecoveryReport(path=path, wal_path=wal_path)
    if (not os.path.exists(wal_path)
            or os.path.getsize(wal_path) <= _HEADER_SIZE):
        return report
    scan = scan_wal(wal_path)
    report.records_scanned = scan.records
    report.truncated_bytes = scan.truncated_bytes
    report.transactions_uncommitted = scan.uncommitted
    if not os.path.exists(path):
        open(path, "wb").close()
    with open(path, "r+b") as data:
        for txn, pages, commit_image in scan.committed:
            for page_id, image in pages:
                data.seek(page_id * scan.page_size)
                data.write(image)
                report.pages_applied += 1
            if commit_image:
                data.seek(0)
                data.write(commit_image)
                report.pages_applied += 1
            report.transactions_applied += 1
        data.flush()
        os.fsync(data.fileno())
    if checkpoint:
        with open(wal_path, "r+b") as f:
            f.truncate(_HEADER_SIZE)
            f.flush()
            os.fsync(f.fileno())
        report.checkpointed = True
    return report


#: sentinel marking a page freed inside a transaction overlay.
_FREED = None


class SnapshotView:
    """A read-only page store pinned to a committed LSN.

    Created by :meth:`WALPageFile.snapshot`.  Reads fall through to the
    live store except for pages the owner has since overwritten or
    freed, whose pre-images were stashed here copy-on-write at apply
    time.  A query (or a whole ``knn_search_batch``) running against a
    snapshot therefore never observes a half-applied — or any later —
    transaction.  Call :meth:`close` to stop copy-on-write stashing.
    """

    def __init__(self, owner: "WALPageFile", lsn: int) -> None:
        self._owner: Optional[WALPageFile] = owner
        self._store = owner.store
        #: page id -> pre-image Node pinned at snapshot time.
        self.versions: Dict[int, Any] = {}
        #: the recovery LSN this view is pinned to.
        self.lsn = lsn

    def read(self, page_id: int) -> Any:
        node = self.versions.get(page_id)
        if node is not None:
            self._store.record_access(page_id, node.level)
            return node
        return self._store.read(page_id)

    def read_many(self, page_ids: Iterable[int]) -> List[Any]:
        return [self.read(pid) for pid in page_ids]

    def record_access(self, page_id: int, level: int) -> None:
        self._store.record_access(page_id, level)

    def peek(self, page_id: int) -> Any:
        node = self.versions.get(page_id)
        if node is not None:
            return node
        return self._store.peek(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.versions or page_id in self._store

    @property
    def stats(self) -> Any:
        return self._store.stats

    @property
    def counting(self) -> bool:
        return bool(self._store.counting)

    @counting.setter
    def counting(self, value: bool) -> None:
        self._store.counting = value

    def add_listener(self, listener: AccessListener) -> None:
        self._store.add_listener(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self._store.remove_listener(listener)

    def flush(self) -> None:
        """No-op: snapshots never write."""

    def close(self) -> None:
        """Release the snapshot: the owner stops stashing pre-images."""
        if self._owner is not None:
            self._owner._release_snapshot(self)
            self._owner = None

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class WALPageFile:
    """Log-then-apply transactions over a buffered disk page store.

    Satisfies the full page-file protocol so a
    :class:`~repro.gist.tree.GiST` can point straight at it.  Between
    :meth:`begin` and :meth:`commit`, writes and frees stage in an
    overlay (reads consult it first); ``commit`` encodes the staged
    nodes, appends them to the log with a commit record carrying the
    new superblock image, fsyncs — the durability point — and only then
    applies the images to the data file.  A crash anywhere in that
    protocol is recovered by :func:`recover`.

    Writes outside a transaction are wrapped in an implicit
    single-operation transaction (with no superblock update), so *every*
    page write flows through the log — the amlint rule REP104 flags
    paths that would bypass it.
    """

    def __init__(self, store: Any, wal: WriteAheadLog,
                 injector: Optional[CrashInjector] = None,
                 checkpoint_bytes: int = 4 * 1024 * 1024) -> None:
        self.store = store
        #: the raw FilePageFile under any BufferPool wrapper.
        self.base = getattr(store, "pagefile", store)
        self.wal = wal
        self.injector = injector
        self.checkpoint_bytes = checkpoint_bytes
        self._in_txn = False
        self._staged: Dict[int, Any] = {}
        self._next_txn = 1
        self._snapshots: List[SnapshotView] = []
        self._broken = False
        #: live page ids (maintained across commits; seeded from disk).
        self._live: Set[int] = set(store.page_ids())

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        if self._broken:
            raise StorageError(
                "store is poisoned after a crash; reopen through recovery",
                path=self.base.path)
        if self._in_txn:
            raise ValueError("transaction already in progress")
        self._in_txn = True
        self._staged = {}

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    def dirty(self) -> bool:
        """Whether the open transaction staged any page changes."""
        return bool(self._staged)

    def abort(self) -> None:
        """Discard the overlay; the data file never saw the transaction.

        Page ids allocated inside the aborted transaction are leaked
        (their slots were never written); the next
        :meth:`~repro.storage.diskfile.FilePageFile.rebuild_slot_state`
        scan skips the resulting all-zero gaps.
        """
        self._staged = {}
        self._in_txn = False

    def pending_counts(self) -> Tuple[int, int]:
        """(live nodes, highest slot) as they will stand after commit.

        The caller bakes these into the superblock image it hands to
        :meth:`commit` — ``num_nodes`` and ``num_slots`` must describe
        the post-apply file.
        """
        live = set(self._live)
        for pid, node in self._staged.items():
            if node is _FREED:
                live.discard(pid)
            else:
                live.add(pid)
        top = max(self.base._slot_count() - 1,
                  max(self._staged, default=0), 0)
        return len(live), top

    def commit(self, meta_image: Optional[bytes] = None) -> int:
        """Log, fsync, then apply the staged transaction.

        ``meta_image`` is the complete superblock page-0 image to
        install (None leaves the superblock alone).  Returns the commit
        LSN, or -1 for an empty transaction (nothing logged).  A
        :class:`~repro.storage.faults.CrashError` fired by an injector
        poisons this store — the caller must discard it and reopen
        through :func:`recover`.
        """
        if not self._in_txn:
            raise ValueError("no transaction in progress")
        if not self._staged and meta_image is None:
            self._in_txn = False
            return -1
        pages: List[Tuple[int, bytes, Any]] = []
        for pid in sorted(self._staged):
            node = self._staged[pid]
            if node is _FREED:
                image = self.base.codec.encode(-1, 0, [])
            else:
                image = self.base.codec.encode(
                    node.page_id, node.level,
                    [tuple(e) for e in node.entries])
            pages.append((pid, image, node))
        txn = self._next_txn
        self._next_txn += 1
        try:
            lsn = self.wal.append_transaction(
                txn, [(pid, image) for pid, image, _ in pages],
                meta_image if meta_image is not None else b"")
            if self.injector is not None:
                self.injector.check("pre-apply")
            self._apply_images(pages, meta_image)
        except CrashError:
            self._broken = True
            raise
        self._staged = {}
        self._in_txn = False
        if self.wal.size_bytes() > self.checkpoint_bytes:
            self.checkpoint()
        return lsn

    def _tear_page(self, page_id: int, image: bytes,
                   fraction: float) -> None:
        """Persist a torn prefix of a page write (crash injection)."""
        keep = max(0, min(len(image) - 1, int(len(image) * fraction)))
        self.base._write_raw(page_id,
                             image[:keep] + b"\x00" * (len(image) - keep))
        self.base.flush()

    def _apply_images(self, pages: List[Tuple[int, bytes, Any]],
                      meta_image: Optional[bytes]) -> None:
        """Redo phase of commit: install logged images in the data file.

        Pre-images of overwritten/freed pages are stashed into live
        snapshots first (copy-on-write), buffer-pool frames are
        invalidated per page, and the data file is fsynced at the end —
        a crash mid-apply is repaired by replaying the log.
        """
        base = self.base
        invalidate = getattr(self.store, "invalidate", None)
        for pid, image, node in pages:
            if self._snapshots:
                self._stash_preimage(pid)
            if self.injector is not None:
                self.injector.check(
                    "mid-apply",
                    lambda frac, pid=pid, img=image:
                        self._tear_page(pid, img, frac))
            base._write_raw(pid, image)
            if invalidate is not None:
                invalidate(pid)
            if node is _FREED:
                base._levels.pop(pid, None)
                if pid not in base._free:
                    base._free.append(pid)
                self._live.discard(pid)
            else:
                base._levels[pid] = node.level
                self._live.add(pid)
            base.stats.writes += 1
        if meta_image is not None:
            base._write_raw(0, meta_image)
        base.flush()
        os.fsync(base._file.fileno())

    def checkpoint(self) -> None:
        """Sync the data file, then reset the log (it has nothing left
        to redo)."""
        if self._in_txn:
            raise ValueError("cannot checkpoint mid-transaction")
        self.base.flush()
        os.fsync(self.base._file.fileno())
        self.wal.reset()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> SnapshotView:
        """A read view pinned to the current committed state."""
        if self._in_txn:
            raise ValueError("cannot snapshot mid-transaction")
        view = SnapshotView(self, self.wal.last_lsn)
        self._snapshots.append(view)
        return view

    def _release_snapshot(self, view: SnapshotView) -> None:
        if view in self._snapshots:
            self._snapshots.remove(view)

    def _stash_preimage(self, page_id: int) -> None:
        """Copy-on-write: pin the current version of a page into every
        live snapshot that does not hold one yet."""
        if all(page_id in snap.versions for snap in self._snapshots):
            return
        try:
            old = self.store.peek(page_id)
        except StorageError:
            return  # page never existed: nothing to preserve
        for snap in self._snapshots:
            snap.versions.setdefault(page_id, old)

    # -- page-file protocol --------------------------------------------------

    def allocate(self) -> int:
        return int(self.store.allocate())

    def reserve(self, up_to: int) -> None:
        self.store.reserve(up_to)

    def read(self, page_id: int) -> Any:
        if self._in_txn and page_id in self._staged:
            node = self._staged[page_id]
            if node is _FREED:
                raise PageMissingError("page freed in open transaction",
                                       path=self.base.path,
                                       page_id=page_id)
            self.store.record_access(page_id, node.level)
            return node
        return self.store.read(page_id)

    def read_many(self, page_ids: Iterable[int]) -> List[Any]:
        page_ids = list(page_ids)
        if self._in_txn and any(pid in self._staged for pid in page_ids):
            return [self.read(pid) for pid in page_ids]
        return list(self.store.read_many(page_ids))

    def record_access(self, page_id: int, level: int) -> None:
        self.store.record_access(page_id, level)

    def peek(self, page_id: int) -> Any:
        if self._in_txn and page_id in self._staged:
            node = self._staged[page_id]
            if node is _FREED:
                raise PageMissingError("page freed in open transaction",
                                       path=self.base.path,
                                       page_id=page_id)
            return node
        return self.store.peek(page_id)

    def write(self, node: Any) -> None:
        if self._in_txn:
            self._staged[node.page_id] = node
            return
        self.begin()
        self._staged[node.page_id] = node
        self.commit(None)

    def write_many(self, nodes: Iterable[Any]) -> None:
        if self._in_txn:
            for node in nodes:
                self._staged[node.page_id] = node
            return
        self.begin()
        for node in nodes:
            self._staged[node.page_id] = node
        self.commit(None)

    def free(self, page_id: int) -> None:
        if self._in_txn:
            self._staged[page_id] = _FREED
            return
        self.begin()
        self._staged[page_id] = _FREED
        self.commit(None)

    def page_ids(self) -> List[int]:
        live = set(self._live)
        if self._in_txn:
            for pid, node in self._staged.items():
                if node is _FREED:
                    live.discard(pid)
                else:
                    live.add(pid)
        return sorted(live)

    def __contains__(self, page_id: int) -> bool:
        if self._in_txn and page_id in self._staged:
            return self._staged[page_id] is not _FREED
        return page_id in self._live

    def __len__(self) -> int:
        return len(self.page_ids())

    @property
    def stats(self) -> Any:
        return self.store.stats

    @property
    def counting(self) -> bool:
        return bool(self.store.counting)

    @counting.setter
    def counting(self, value: bool) -> None:
        self.store.counting = value

    def add_listener(self, listener: AccessListener) -> None:
        self.store.add_listener(listener)

    def remove_listener(self, listener: AccessListener) -> None:
        self.store.remove_listener(listener)

    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        self.wal.close()
        self.store.close()

    def __enter__(self) -> "WALPageFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
