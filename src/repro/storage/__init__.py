"""Paged storage substrate: codecs, page files, buffering, and I/O cost.

The GiST layer stores nodes in fixed-size pages.  Fanout is determined by
real byte budgets (predicate codec sizes against the page payload), page
reads are counted by :class:`~repro.storage.pagefile.PageFile` instances,
and :class:`~repro.storage.iomodel.DiskModel` converts access counts into
the paper's random-vs-sequential I/O economics (section 3.2).
"""

from repro.storage.page import PAGE_HEADER_SIZE, page_payload
from repro.storage.pagefile import AccessListener, MemoryPageFile, PageStats
from repro.storage.buffer import BufferPool
from repro.storage.iomodel import DiskModel

__all__ = [
    "PAGE_HEADER_SIZE",
    "page_payload",
    "AccessListener",
    "MemoryPageFile",
    "PageStats",
    "BufferPool",
    "DiskModel",
]
