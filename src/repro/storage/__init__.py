"""Paged storage substrate: codecs, page files, buffering, and I/O cost.

The GiST layer stores nodes in fixed-size pages.  Fanout is determined by
real byte budgets (predicate codec sizes against the page payload), page
reads are counted by :class:`~repro.storage.pagefile.PageFile` instances,
and :class:`~repro.storage.iomodel.DiskModel` converts access counts into
the paper's random-vs-sequential I/O economics (section 3.2).

Resilience (see DESIGN.md "Storage resilience"): page images carry
CRC32C seals (:mod:`repro.storage.integrity`), failures surface through
the typed hierarchy in :mod:`repro.storage.errors`, transient faults are
masked by :mod:`repro.storage.retry`, and
:class:`~repro.storage.faults.FaultyPageFile` injects deterministic
failures for testing.  Mutation is made atomic and durable by the
write-ahead log (:mod:`repro.storage.wal`): transactions stage in a
:class:`WALPageFile` overlay, reach the sidecar log plus an fsync
before the data file, and are redone by :func:`recover` after a crash.
All stores — memory, disk, buffered, faulty, logged — satisfy
:class:`PageFileProtocol` and are interchangeable.
"""

from typing import Any, Callable, Iterable, List, Protocol, runtime_checkable

from repro.storage.page import PAGE_HEADER_SIZE, page_payload
from repro.storage.pagefile import AccessListener, MemoryPageFile, PageStats
from repro.storage.buffer import BufferPool
from repro.storage.diskfile import FilePageFile
from repro.storage.iomodel import DiskModel
from repro.storage.errors import (StorageError, PageCorruptError,
                                  PageMissingError, TransientIOError)
from repro.storage.integrity import FORMAT_EPOCH, crc32c
from repro.storage.retry import RetryPolicy, call_with_retry
from repro.storage.faults import (CrashError, CrashInjector, CrashPoint,
                                  FaultLog, FaultPolicy, FaultyPageFile)
from repro.storage.wal import (RecoveryReport, SnapshotView, WALPageFile,
                               WALScan, WriteAheadLog, default_wal_path,
                               recover, scan_wal)


@runtime_checkable
class PageFileProtocol(Protocol):
    """What every page store — memory, disk, buffered, fault-injected —
    must provide so trees, profilers, and tools can treat them alike.

    ``read`` is the counted query path; ``peek`` the uncounted
    maintenance path.  ``stats`` and ``counting`` are attributes by
    convention (``runtime_checkable`` checks methods only).
    """

    # id allocation
    def allocate(self) -> int: ...
    def reserve(self, up_to: int) -> None: ...

    # node access
    def read(self, page_id: int) -> Any: ...
    def read_many(self, page_ids: Iterable[int]) -> List[Any]: ...
    def record_access(self, page_id: int, level: int) -> None: ...
    def peek(self, page_id: int) -> Any: ...
    def write(self, node: Any) -> None: ...
    def write_many(self, nodes: Iterable[Any]) -> None: ...
    def free(self, page_id: int) -> None: ...
    def page_ids(self) -> List[int]: ...
    def __contains__(self, page_id: int) -> bool: ...
    def __len__(self) -> int: ...

    # accounting listeners
    def add_listener(self, listener: Callable[[int, int], None]) -> None: ...
    def remove_listener(self, listener: Callable[[int, int], None]) -> None: ...

    # lifecycle
    def flush(self) -> None: ...
    def close(self) -> None: ...
    def __enter__(self) -> "PageFileProtocol": ...
    def __exit__(self, *exc: Any) -> None: ...


__all__ = [
    "PAGE_HEADER_SIZE",
    "page_payload",
    "AccessListener",
    "MemoryPageFile",
    "PageStats",
    "BufferPool",
    "FilePageFile",
    "DiskModel",
    "PageFileProtocol",
    "StorageError",
    "PageCorruptError",
    "PageMissingError",
    "TransientIOError",
    "FORMAT_EPOCH",
    "crc32c",
    "RetryPolicy",
    "call_with_retry",
    "FaultLog",
    "FaultPolicy",
    "FaultyPageFile",
    "CrashError",
    "CrashInjector",
    "CrashPoint",
    "WriteAheadLog",
    "WALPageFile",
    "WALScan",
    "SnapshotView",
    "RecoveryReport",
    "default_wal_path",
    "recover",
    "scan_wal",
]
