"""Binary codecs for keys, predicates, and node pages.

Codecs serve two purposes.  First, they define the *size in bytes* of
every stored predicate, which determines fanout and therefore tree height
— the central trade-off of the paper (Table 3).  Second, they provide a
real serialization path so trees can be persisted and reloaded, and so
tests can verify that what we account for is what we would actually
store.

All numbers are stored as little-endian ``float64`` / ``int64``
(``NUMBER_SIZE`` = 8 bytes), matching the paper's "numbers" unit.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import NUMBER_SIZE
from repro.geometry import Bite, BittenRect, Rect, Sphere
from repro.storage.errors import PageCorruptError
from repro.storage.integrity import seal_image, seal_images, verify_image
from repro.storage.page import PAGE_HEADER_SIZE


class Codec:
    """Fixed-size binary codec interface."""

    #: encoded size in bytes (fixed for all values)
    size: int

    def encode(self, value: Any, /) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, /) -> Any:
        raise NotImplementedError

    @property
    def numbers(self) -> int:
        """Size expressed in the paper's 'numbers stored' unit."""
        return self.size // NUMBER_SIZE


class VectorCodec(Codec):
    """A ``dim``-dimensional float64 vector (leaf keys)."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.size = dim * NUMBER_SIZE

    def encode(self, value: Any) -> bytes:
        arr = np.asarray(value, dtype="<f8")
        if arr.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {arr.shape}")
        return arr.tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        return np.frombuffer(data, dtype="<f8", count=self.dim).copy()


class RectCodec(Codec):
    """MBR predicate: ``2 * dim`` numbers (paper Table 3, MBR row)."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.size = 2 * dim * NUMBER_SIZE

    def encode(self, rect: Rect) -> bytes:
        return (np.asarray(rect.lo, dtype="<f8").tobytes()
                + np.asarray(rect.hi, dtype="<f8").tobytes())

    def decode(self, data: bytes) -> Rect:
        flat = np.frombuffer(data, dtype="<f8", count=2 * self.dim)
        return Rect(flat[:self.dim].copy(), flat[self.dim:].copy())


class SphereCodec(Codec):
    """SS-tree predicate: center plus radius (``dim + 1`` numbers)."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.size = (dim + 1) * NUMBER_SIZE

    def encode(self, sphere: Sphere) -> bytes:
        return (np.asarray(sphere.center, dtype="<f8").tobytes()
                + struct.pack("<d", sphere.radius))

    def decode(self, data: bytes) -> Sphere:
        flat = np.frombuffer(data, dtype="<f8", count=self.dim + 1)
        return Sphere(flat[:self.dim].copy(), float(flat[self.dim]))


class RectSphereCodec(Codec):
    """SR-tree predicate: MBR and sphere (``3 * dim + 1`` numbers)."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._rect = RectCodec(dim)
        self._sphere = SphereCodec(dim)
        self.size = self._rect.size + self._sphere.size

    def encode(self, value: Tuple[Rect, Sphere]) -> bytes:
        rect, sphere = value
        return self._rect.encode(rect) + self._sphere.encode(sphere)

    def decode(self, data: bytes) -> Tuple[Rect, Sphere]:
        rect = self._rect.decode(data[:self._rect.size])
        sphere = self._sphere.decode(data[self._rect.size:])
        return rect, sphere


class DualRectCodec(Codec):
    """MAP predicate: two MBRs, ``4 * dim`` numbers (Table 3, MAP row)."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._rect = RectCodec(dim)
        self.size = 2 * self._rect.size

    def encode(self, value: Tuple[Rect, Rect]) -> bytes:
        r1, r2 = value
        return self._rect.encode(r1) + self._rect.encode(r2)

    def decode(self, data: bytes) -> Tuple[Rect, Rect]:
        r1 = self._rect.decode(data[:self._rect.size])
        r2 = self._rect.decode(data[self._rect.size:])
        return r1, r2


class JBCodec(Codec):
    """JB predicate: MBR plus one inner point per corner.

    ``(2 + 2**dim) * dim`` numbers (Table 3, JB row).  Corners are stored
    in mask order, so no corner identifiers are needed; a corner without a
    bite stores the corner point itself (a zero-volume bite).
    """

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._rect = RectCodec(dim)
        self.corners = 1 << dim
        self.size = self._rect.size + self.corners * dim * NUMBER_SIZE

    def encode(self, value: BittenRect) -> bytes:
        rect = value.rect
        by_mask = {b.corner_mask: b for b in value.bites}
        parts = [self._rect.encode(rect)]
        for mask in range(self.corners):
            bite = by_mask.get(mask)
            inner = bite.inner if bite is not None else rect.corner(mask)
            parts.append(np.asarray(inner, dtype="<f8").tobytes())
        return b"".join(parts)

    def decode(self, data: bytes) -> BittenRect:
        rect = self._rect.decode(data[:self._rect.size])
        flat = np.frombuffer(data[self._rect.size:], dtype="<f8",
                             count=self.corners * self.dim)
        inners = flat.reshape(self.corners, self.dim)
        bites: List[Bite] = []
        for mask in range(self.corners):
            bite = Bite(mask, rect.corner(mask), inners[mask].copy())
            if not bite.is_empty():
                bites.append(bite)
        return BittenRect(rect, bites)


class XJBCodec(Codec):
    """XJB predicate: MBR plus the top ``x`` bites.

    ``2 * dim + (dim + 1) * x`` numbers (Table 3, XJB row): each stored
    bite costs its inner point (``dim`` numbers) plus one number
    identifying the corner.  Unused slots store a corner id of -1.
    """

    def __init__(self, dim: int, x: int) -> None:
        if x < 0 or x > (1 << dim):
            raise ValueError(f"x={x} out of range for dim={dim}")
        self.dim = dim
        self.x = x
        self._rect = RectCodec(dim)
        self.size = self._rect.size + (dim + 1) * x * NUMBER_SIZE

    def encode(self, value: BittenRect) -> bytes:
        if len(value.bites) > self.x:
            raise ValueError(
                f"predicate has {len(value.bites)} bites, codec allows {self.x}")
        parts = [self._rect.encode(value.rect)]
        for bite in value.bites:
            parts.append(struct.pack("<d", float(bite.corner_mask)))
            parts.append(np.asarray(bite.inner, dtype="<f8").tobytes())
        empty = struct.pack("<d", -1.0) + b"\x00" * (self.dim * NUMBER_SIZE)
        parts.extend([empty] * (self.x - len(value.bites)))
        return b"".join(parts)

    def decode(self, data: bytes) -> BittenRect:
        rect = self._rect.decode(data[:self._rect.size])
        bites: List[Bite] = []
        offset = self._rect.size
        slot = NUMBER_SIZE + self.dim * NUMBER_SIZE
        for _ in range(self.x):
            mask = struct.unpack_from("<d", data, offset)[0]
            if mask >= 0:
                inner = np.frombuffer(
                    data, dtype="<f8", count=self.dim,
                    offset=offset + NUMBER_SIZE).copy()
                bite = Bite(int(mask), rect.corner(int(mask)), inner)
                if not bite.is_empty():
                    bites.append(bite)
            offset += slot
        return BittenRect(rect, bites)


class LeafEntryCodec(Codec):
    """A ``(key, RID)`` pair: key vector plus an int64 record id."""

    #: identifies the leaf-page body format in the superblock (absent
    #: or ``"f64"`` means this codec — the v1 raw-float64 layout).
    codec_id = "f64"
    #: True when decode returns approximations of the encoded keys.
    lossy = False

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._key = VectorCodec(dim)
        self.size = self._key.size + NUMBER_SIZE

    def body_bytes(self, count: int) -> int:
        """Encoded body size for ``count`` entries."""
        return count * self.size

    def capacity(self, page_size: int) -> int:
        """Entries that fit in one page of ``page_size`` bytes."""
        return (page_size - PAGE_HEADER_SIZE) // self.size

    def encode(self, value: Any) -> bytes:
        key, rid = value
        return self._key.encode(key) + struct.pack("<q", rid)

    def decode(self, data: bytes) -> Tuple[np.ndarray, int]:
        key = self._key.decode(data[:self._key.size])
        rid = struct.unpack_from("<q", data, self._key.size)[0]
        return key, rid

    def encode_block(self, keys: np.ndarray, rids: Sequence[int]) -> bytes:
        """All of a leaf's entries as one buffer, in one shot.

        Byte-identical to concatenating :meth:`encode` over the
        ``(key, rid)`` pairs; the keys land via a single dtype view
        instead of one ``tobytes`` per entry.
        """
        n = len(rids)
        if n == 0:
            return b""
        keys = np.ascontiguousarray(keys, dtype="<f8")
        if keys.shape != (n, self.dim):
            raise ValueError(
                f"expected ({n}, {self.dim}) keys, got {keys.shape}")
        buf = np.empty((n, self.size), dtype=np.uint8)
        buf[:, :self._key.size] = keys.view(np.uint8).reshape(n, -1)
        buf[:, self._key.size:] = np.ascontiguousarray(
            rids, dtype="<i8").view(np.uint8).reshape(n, -1)
        return buf.tobytes()

    def decode_block(self, body: Any,
                     count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`encode_block`: stacked arrays, zero-copy.

        ``body`` is any buffer holding ``count`` packed entries (a bytes
        object, an mmap slice, a page-image row); the result is a
        ``(count, dim)`` float64 key matrix and a ``(count,)`` int64 rid
        vector, both *views* over ``body`` — no per-entry objects, no
        copies.  Value-identical to :meth:`decode` applied entry by
        entry.
        """
        if count == 0:
            return (np.empty((0, self.dim), dtype=np.float64),
                    np.empty(0, dtype=np.int64))
        per = self.dim + 1
        keys = np.frombuffer(body, dtype="<f8",
                             count=count * per).reshape(count, per)
        rids = np.frombuffer(body, dtype="<i8",
                             count=count * per).reshape(count, per)
        return keys[:, :self.dim], rids[:, self.dim]


class QuantizedKeys:
    """A lazily dequantized block of SQ8 leaf keys.

    Wraps the raw ``(count, dim)`` uint8 code matrix together with the
    page's affine parameters.  Nothing is converted to float64 until
    :meth:`dequantize` is called — decode stays a pure view operation,
    and bound kernels choose when (and whether) to pay for the floats.
    """

    __slots__ = ("codes", "mins", "maxs", "scales")

    def __init__(self, codes: np.ndarray, mins: np.ndarray,
                 maxs: np.ndarray) -> None:
        self.codes = codes
        self.mins = mins
        self.maxs = maxs
        self.scales = (maxs - mins) / 255.0

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.codes), self.codes.shape[1])

    def dequantize(self) -> np.ndarray:
        """Cell centers as float64, clipped into ``[mins, maxs]``.

        The clip guarantees every reconstructed key stays inside the
        page's exact key bounding box (float rounding in
        ``min + 255 * scale`` could otherwise overshoot ``max`` by an
        ulp and escape a parent MBR that was fit to the originals).
        """
        out = self.mins + self.codes * self.scales
        np.clip(out, self.mins, self.maxs, out=out)
        return out

    def half_widths(self) -> np.ndarray:
        """Per-dimension quantization-cell half widths (``scale / 2``).

        Any key encoded into this page lies within ``half_widths`` of
        its reconstruction along every axis — the bound that makes the
        VA-file style pruning in the k-NN kernels admissible.
        """
        return self.scales * 0.5


class QuantizedLeafCodec(LeafEntryCodec):
    """SQ8 leaf-page body: 8-bit keys + delta-packed RIDs.

    Body layout (all little-endian)::

        mins      dim * f8   per-dimension affine minimum
        maxs      dim * f8   per-dimension affine maximum
        rid_base  1 * i8     smallest RID on the page
        codes     count * dim * u8   round((key - min) / scale)
        offsets   count * u4        rid - rid_base, ascending

    where ``scale = (max - min) / 255`` per dimension.  Entries are
    stored sorted by RID so the u4 offsets are non-decreasing (strictly
    increasing when RIDs are unique — treecheck's ``RID_ORDER`` code).
    Decoding reconstructs ``min + code * scale``: within ``scale / 2``
    of the original along every axis, and (after clipping) never
    outside the page's exact key bounding box.

    Per-entry ``size`` is ``dim + 4`` bytes against the float64 codec's
    ``8 * dim + 8`` — at dim=5, 9 bytes vs 48, so pages hold ~5.3x more
    entries net of the ``(2 * dim + 1) * 8``-byte page preamble.
    """

    codec_id = "sq8"
    lossy = True

    #: RID spread representable by the u4 offsets of one page.
    RID_RANGE = 1 << 32

    def __init__(self, dim: int) -> None:  # noqa: super-init-not-called
        self.dim = dim
        #: per-entry bytes: ``dim`` u8 codes + one u4 RID offset.
        self.size = dim + 4
        #: fixed per-page overhead: mins, maxs, rid_base.
        self.preamble = (2 * dim + 1) * NUMBER_SIZE

    def body_bytes(self, count: int) -> int:
        """Encoded body size for ``count`` entries (0 for an empty leaf)."""
        return self.preamble + count * self.size if count else 0

    def capacity(self, page_size: int) -> int:
        """Entries that fit in one page of ``page_size`` bytes."""
        return (page_size - PAGE_HEADER_SIZE - self.preamble) // self.size

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError(
            "SQ8 entries cannot be encoded one at a time: the affine "
            "params are per page — use encode_block")

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError(
            "SQ8 entries cannot be decoded one at a time: the affine "
            "params are per page — use decode_block")

    def encode_block(self, keys: np.ndarray, rids: Sequence[int]) -> bytes:
        """Quantize one leaf's entries into a page body.

        Entries are reordered by ascending RID (leaf entry order is not
        a tree invariant).  Raises ``ValueError`` on non-finite keys or
        a RID spread the u4 offsets cannot represent.
        """
        n = len(rids)
        if n == 0:
            return b""
        keys = np.ascontiguousarray(keys, dtype="<f8")
        if keys.shape != (n, self.dim):
            raise ValueError(
                f"expected ({n}, {self.dim}) keys, got {keys.shape}")
        if not np.isfinite(keys).all():
            raise ValueError("SQ8 keys must be finite (got NaN or inf)")
        rid_arr = np.ascontiguousarray(rids, dtype="<i8")
        order = np.argsort(rid_arr, kind="stable")
        rid_arr = rid_arr[order]
        keys = keys[order]
        rid_base = int(rid_arr[0])
        offsets = rid_arr - rid_base
        if int(offsets[-1]) >= self.RID_RANGE:
            raise ValueError(
                f"RID spread {int(offsets[-1])} exceeds the u4 offset "
                f"range of one SQ8 page")
        mins = keys.min(axis=0)
        maxs = keys.max(axis=0)
        scales = (maxs - mins) / 255.0
        codes = np.zeros_like(keys)
        np.divide(keys - mins, scales, out=codes, where=scales > 0)
        codes = np.clip(np.rint(codes), 0, 255).astype(np.uint8)
        return (mins.astype("<f8").tobytes()
                + maxs.astype("<f8").tobytes()
                + struct.pack("<q", rid_base)
                + codes.tobytes()
                + offsets.astype("<u4").tobytes())

    def decode_block(self, body: Any,
                     count: int) -> Tuple[Any, np.ndarray]:
        """Inverse of :meth:`encode_block`, still zero-copy.

        Returns a :class:`QuantizedKeys` (codes stay a uint8 view over
        ``body``; no float64 is materialized here) and the int64 RID
        vector.  Raises :class:`PageCorruptError` on a truncated body
        or damaged affine params.
        """
        if count == 0:
            return (np.empty((0, self.dim), dtype=np.float64),
                    np.empty(0, dtype=np.int64))
        view = memoryview(body)
        if view.nbytes < self.body_bytes(count):
            raise PageCorruptError(
                f"truncated SQ8 body: {view.nbytes} bytes < "
                f"{self.body_bytes(count)} needed for {count} entries")
        mins = np.frombuffer(body, dtype="<f8", count=self.dim)
        maxs = np.frombuffer(body, dtype="<f8", count=self.dim,
                             offset=self.dim * NUMBER_SIZE)
        if (not np.isfinite(mins).all() or not np.isfinite(maxs).all()
                or bool((maxs < mins).any())):
            raise PageCorruptError("damaged SQ8 affine params")
        rid_base = struct.unpack_from("<q", body, 2 * self.dim * NUMBER_SIZE)[0]
        codes = np.frombuffer(body, dtype=np.uint8, count=count * self.dim,
                              offset=self.preamble).reshape(count, self.dim)
        offsets = np.frombuffer(body, dtype="<u4", count=count,
                                offset=self.preamble + count * self.dim)
        rids = rid_base + offsets.astype(np.int64)
        return QuantizedKeys(codes, mins, maxs), rids


#: leaf codecs by superblock ``leaf_codec`` field value.
LEAF_CODECS = {"f64": LeafEntryCodec, "sq8": QuantizedLeafCodec}


def make_leaf_codec(codec_id: str, dim: int) -> LeafEntryCodec:
    """The leaf codec registered under ``codec_id`` (see ``LEAF_CODECS``)."""
    try:
        cls = LEAF_CODECS[codec_id]
    except KeyError:
        raise ValueError(
            f"unknown leaf codec {codec_id!r}; "
            f"known: {sorted(LEAF_CODECS)}") from None
    return cls(dim)


class IndexEntryCodec(Codec):
    """A ``(predicate, child page id)`` pair."""

    def __init__(self, pred_codec: Codec) -> None:
        self.pred_codec = pred_codec
        self.size = pred_codec.size + NUMBER_SIZE

    def encode(self, value: Any) -> bytes:
        pred, child = value
        return self.pred_codec.encode(pred) + struct.pack("<q", child)

    def decode(self, data: bytes) -> Tuple[Any, int]:
        pred = self.pred_codec.decode(data[:self.pred_codec.size])
        child = struct.unpack_from("<q", data, self.pred_codec.size)[0]
        return pred, child


class NodeCodec:
    """Serializes whole nodes into fixed-size page images.

    With ``checksums=True`` (the default) every encoded image is sealed
    with a CRC32C + format-epoch pair in the header's reserved region
    (see :mod:`repro.storage.integrity`) and every decode verifies it,
    raising :class:`~repro.storage.errors.PageCorruptError` on damage.
    Unsealed legacy images (zero crc and epoch) decode without
    verification, so files written before checksums still load.
    """

    def __init__(self, page_size: int, leaf_codec: LeafEntryCodec,
                 index_codec: IndexEntryCodec, *,
                 checksums: bool = True) -> None:
        self.page_size = page_size
        self.leaf_codec = leaf_codec
        self.index_codec = index_codec
        self.checksums = checksums

    def leaf_body(self, entries: Sequence[Any]) -> bytes:
        """One leaf's ``(key, rid)`` entries as an encoded page body.

        Routes through the leaf codec's block interface — the only
        encode path that works for every codec (SQ8 affine params are
        per page, so per-entry encoding cannot exist), and byte-
        identical to the per-entry float64 encoding by the
        ``encode_block`` contract.
        """
        if not entries:
            return b""
        keys = np.asarray([np.asarray(e[0], dtype=np.float64)
                           for e in entries])
        rids = [int(e[1]) for e in entries]
        return self.leaf_codec.encode_block(keys, rids)

    def encode(self, page_id: int, level: int,
               entries: Sequence[Any]) -> bytes:
        if level == 0:
            body = self.leaf_body(entries)
        else:
            body = b"".join(self.index_codec.encode(e) for e in entries)
        header = struct.pack("<qii", page_id, level, len(entries))
        header += b"\x00" * (PAGE_HEADER_SIZE - len(header))
        image = header + body
        if len(image) > self.page_size:
            raise ValueError(
                f"node {page_id} overflows page: {len(image)} > "
                f"{self.page_size} bytes")
        image += b"\x00" * (self.page_size - len(image))
        return seal_image(image) if self.checksums else image

    def encode_pages(self, pages: Sequence[Tuple[int, int, int, bytes]]
                     ) -> np.ndarray:
        """Encode many nodes into an ``(n, page_size)`` image array.

        ``pages`` rows are ``(page_id, level, count, body)`` with the
        body already entry-encoded (e.g. via
        :meth:`LeafEntryCodec.encode_block`).  Row ``i`` of the result
        is byte-identical to :meth:`encode` of the same node; with
        checksums on, all rows are sealed by one batched CRC pass.
        """
        images = np.zeros((len(pages), self.page_size), dtype=np.uint8)
        for i, (page_id, level, count, body) in enumerate(pages):
            if PAGE_HEADER_SIZE + len(body) > self.page_size:
                raise ValueError(
                    f"node {page_id} overflows page: "
                    f"{PAGE_HEADER_SIZE + len(body)} > "
                    f"{self.page_size} bytes")
            header = struct.pack("<qii", page_id, level, count)
            images[i, :len(header)] = np.frombuffer(header, dtype=np.uint8)
            images[i, PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + len(body)] = \
                np.frombuffer(body, dtype=np.uint8)
        if self.checksums:
            seal_images(images)
        return images

    def decode(self, image: bytes, *, verify: Optional[bool] = None,
               path: Optional[str] = None) -> Tuple[int, int, List[Any]]:
        if len(image) < self.page_size:
            raise PageCorruptError(
                f"truncated page image: {len(image)} of "
                f"{self.page_size} bytes", path=path)
        if verify if verify is not None else self.checksums:
            verify_image(image, path=path)
        page_id, level, count = struct.unpack_from("<qii", image, 0)
        codec = self.leaf_codec if level == 0 else self.index_codec
        nbytes = (self.leaf_codec.body_bytes(count) if level == 0
                  else count * codec.size)
        if count < 0 or PAGE_HEADER_SIZE + nbytes > len(image):
            raise PageCorruptError(
                f"entry count {count} overflows page "
                f"(level {level}, {codec.size}-byte entries)",
                path=path, page_id=page_id)
        entries: List[Any] = []
        if level == 0:
            body = image[PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + nbytes]
            try:
                keys, rids = self.leaf_codec.decode_block(body, count)
            except PageCorruptError as exc:
                raise PageCorruptError(
                    str(exc), path=path, page_id=page_id) from None
            except (struct.error, ValueError) as exc:
                raise PageCorruptError(
                    f"undecodable leaf body: {exc}",
                    path=path, page_id=page_id) from None
            if not isinstance(keys, np.ndarray):
                keys = keys.dequantize()
            entries.extend(
                (keys[i].copy(), int(rids[i])) for i in range(count))
            return page_id, level, entries
        offset = PAGE_HEADER_SIZE
        try:
            for _ in range(count):
                entries.append(
                    codec.decode(image[offset:offset + codec.size]))
                offset += codec.size
        except (struct.error, ValueError) as exc:
            raise PageCorruptError(
                f"undecodable entry at offset {offset}: {exc}",
                path=path, page_id=page_id) from None
        return page_id, level, entries
