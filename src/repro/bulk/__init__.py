"""Bulk loading: STR packing [Leutenegger et al. 96] and tree building.

The paper's data set is static, so every experimental tree is bulk
loaded; STR ordering is what drives utilization and clustering loss to
near zero (Table 2), leaving excess coverage as the loss to attack.
"""

from repro.bulk.str_pack import str_order, chunk_sizes
from repro.bulk.loader import bulk_load, insertion_load

__all__ = ["str_order", "chunk_sizes", "bulk_load", "insertion_load"]
