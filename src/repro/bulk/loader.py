"""Tree construction: STR bulk loading and insertion loading.

:func:`bulk_load` packs STR-ordered keys into full leaves and builds the
upper levels bottom-up, recomputing each level's bounding predicates with
the extension's own constructors — so a JB tree gets bitten predicates at
every level, an SS-tree gets spheres, and so on.  :func:`insertion_load`
builds the same tree through repeated INSERT calls, the configuration the
paper contrasts in Table 2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE
from repro.bulk.str_pack import chunk_sizes, str_order
from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.extension import GiSTExtension
from repro.gist.node import Node
from repro.gist.tree import GiST

#: default bulk fill fraction; full pages maximize utilization as the
#: paper's STR loading does, while leaving headroom for later inserts.
DEFAULT_FILL = 1.0


def _resolve_ordering(order):
    """Map an ordering name to its function (see repro.bulk.spacefill)."""
    if callable(order):
        return order
    if order == "str":
        return str_order
    if order in ("morton", "hilbert"):
        from repro.bulk import spacefill
        return getattr(spacefill, f"{order}_order")
    raise ValueError(f"unknown bulk ordering {order!r}; "
                     "choose 'str', 'morton', 'hilbert', or a callable")


def bulk_load(ext: GiSTExtension, keys: np.ndarray,
              rids: Optional[Sequence[int]] = None,
              page_size: int = DEFAULT_PAGE_SIZE,
              store=None, fill: float = DEFAULT_FILL,
              order: str = "str") -> GiST:
    """Build a tree over ``keys`` using a packed ordering.

    ``order`` selects the packing: ``"str"`` (the paper's
    sort-tile-recursive, default), ``"hilbert"`` or ``"morton"``
    space-filling curves, or any callable ``(points, capacity) ->
    indices``.  ``rids`` default to ``0..n-1``; ``fill`` scales the
    per-page entry target (1.0 packs pages full).
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 2:
        raise ValueError("keys must be a 2-D (n, dim) array")
    n = len(keys)
    if rids is None:
        rids = range(n)
    rids = list(rids)
    if len(rids) != n:
        raise ValueError(f"{n} keys but {len(rids)} rids")

    tree = GiST(ext, store=store, page_size=page_size)
    if n == 0:
        return tree
    was_counting = tree.store.counting
    tree.store.counting = False
    try:
        _build(tree, keys, rids, fill, _resolve_ordering(order))
    finally:
        tree.store.counting = was_counting
    return tree


def _build(tree: GiST, keys: np.ndarray, rids, fill: float,
           order_fn) -> None:
    ext = tree.ext
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")

    # -- leaf level --------------------------------------------------------
    leaf_target = max(tree.min_entries(0),
                      int(tree.leaf_capacity * fill))
    order = order_fn(keys, leaf_target)
    entries = []
    nodes = []
    pos = 0
    for size in chunk_sizes(len(keys), leaf_target, tree.min_entries(0),
                            tree.leaf_capacity):
        chunk = order[pos:pos + size]
        pos += size
        node = Node(tree.store.allocate(), 0,
                    [LeafEntry(keys[i], rids[i]) for i in chunk])
        tree.store.write(node)
        nodes.append(node)
        entries.append(IndexEntry(ext.pred_for_keys(keys[chunk]),
                                  node.page_id))

    # -- upper levels -------------------------------------------------------
    level = 1
    index_target = max(tree.min_entries(1),
                       int(tree.index_capacity * fill))
    while len(entries) > 1:
        centers = np.stack([ext.routing_point(e.pred) for e in entries])
        order = order_fn(centers, index_target)
        next_entries = []
        pos = 0
        for size in chunk_sizes(len(entries), index_target,
                                tree.min_entries(level),
                                tree.index_capacity):
            chunk = order[pos:pos + size]
            pos += size
            node = Node(tree.store.allocate(), level,
                        [entries[i] for i in chunk])
            tree.store.write(node)
            next_entries.append(IndexEntry(
                ext.pred_for_preds([entries[i].pred for i in chunk]),
                node.page_id))
        entries = next_entries
        level += 1

    root = tree.store.peek(entries[0].child)
    tree.adopt(root, height=root.level + 1, size=len(keys))


def insertion_load(ext: GiSTExtension, keys: np.ndarray,
                   rids: Optional[Sequence[int]] = None,
                   page_size: int = DEFAULT_PAGE_SIZE,
                   store=None, shuffle_seed: Optional[int] = None) -> GiST:
    """Build a tree by inserting keys one at a time (Table 2's contrast).

    ``shuffle_seed`` randomizes insertion order; ``None`` inserts in the
    given order.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = len(keys)
    if rids is None:
        rids = range(n)
    rids = list(rids)
    order = np.arange(n)
    if shuffle_seed is not None:
        order = np.random.default_rng(shuffle_seed).permutation(n)

    tree = GiST(ext, store=store, page_size=page_size)
    was_counting = tree.store.counting
    tree.store.counting = False
    try:
        for i in order:
            tree.insert(keys[i], rids[i])
    finally:
        tree.store.counting = was_counting
    return tree
