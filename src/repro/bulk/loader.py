"""Tree construction: STR bulk loading and insertion loading.

:func:`bulk_load` packs STR-ordered keys into full leaves and builds the
upper levels bottom-up, recomputing each level's bounding predicates with
the extension's own constructors — so a JB tree gets bitten predicates at
every level, an SS-tree gets spheres, and so on.  :func:`insertion_load`
builds the same tree through repeated INSERT calls, the configuration the
paper contrasts in Table 2.

Pipeline
--------
Each level is built as a batch: the parent computes the packing order,
splits it into chunks with :func:`~repro.bulk.str_pack.chunk_sizes`, and
allocates every chunk's page id *in chunk order* before any node is
built.  Nodes are then assembled, their bounding predicates constructed
in one vectorized :meth:`~repro.gist.extension.GiSTExtension.
preds_for_nodes` call, and the whole level written through the store's
batched :meth:`write_many` path.

With ``workers > 1`` the chunk list is sharded into contiguous ranges
and one forked worker builds each shard (the fork pattern of
:mod:`repro.storage.fork`).  The resulting page file is **byte-identical
to a sequential build at any worker count** because every input a page's
bytes depend on is fixed before the fork: page ids are pre-allocated in
chunk order, the packing order is computed once by the parent, and
randomized predicate constructions draw from RNGs keyed to the node's
``(level, index)`` position rather than a shared stream.  Workers write
their disjoint page ranges directly (through private descriptors) when
the store supports it, and ship nodes back for the parent to write
otherwise; either way the merge is in shard order.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amdb.profiler import BuildProfile
from repro.constants import DEFAULT_PAGE_SIZE
from repro.bulk.str_pack import chunk_sizes, str_order
from repro.gist.entry import IndexEntry
from repro.gist.extension import GiSTExtension
from repro.gist.node import Node
from repro.gist.tree import GiST
from repro.storage.fork import (fork_available, reopen_files, shard_bounds,
                                usable_cpus)

#: default bulk fill fraction; full pages maximize utilization as the
#: paper's STR loading does, while leaving headroom for later inserts.
DEFAULT_FILL = 1.0

#: don't fork for a level with fewer chunks than this per worker — the
#: fork/IPC overhead would dominate (tiny upper levels, small builds).
_MIN_CHUNKS_PER_WORKER = 4


def _resolve_ordering(order):
    """Map an ordering name to its function (see repro.bulk.spacefill)."""
    if callable(order):
        return order
    if order == "str":
        return str_order
    if order in ("morton", "hilbert"):
        from repro.bulk import spacefill
        return getattr(spacefill, f"{order}_order")
    raise ValueError(f"unknown bulk ordering {order!r}; "
                     "choose 'str', 'morton', 'hilbert', or a callable")


def bulk_load(ext: GiSTExtension, keys: np.ndarray,
              rids: Optional[Sequence[int]] = None,
              page_size: int = DEFAULT_PAGE_SIZE,
              store=None, fill: float = DEFAULT_FILL,
              order: str = "str", workers: int = 1,
              oversubscribe: bool = False,
              profile: Optional[BuildProfile] = None,
              leaf_codec=None) -> GiST:
    """Build a tree over ``keys`` using a packed ordering.

    ``order`` selects the packing: ``"str"`` (the paper's
    sort-tile-recursive, default), ``"hilbert"`` or ``"morton"``
    space-filling curves, or any callable ``(points, capacity) ->
    indices``.  ``rids`` default to ``0..n-1``; ``fill`` scales the
    per-page entry target (1.0 packs pages full).

    ``workers > 1`` builds each level's nodes in up to that many forked
    processes; the page file that results is byte-identical to a
    sequential build (see the module docstring for why).  Where fork is
    unavailable the build silently runs sequentially.  The effective
    worker count is clamped to the CPUs the process may run on —
    CPU-bound workers beyond that only add scheduling overhead — unless
    ``oversubscribe`` is True, which forks the full requested count
    regardless (useful for exercising the parallel merge path on small
    machines).  Pass a :class:`~repro.amdb.profiler.BuildProfile` as
    ``profile`` to collect per-phase timings.

    ``leaf_codec`` overrides the leaf-page encoding (e.g. a
    :class:`~repro.storage.codecs.QuantizedLeafCodec` packs 4-6x more
    entries per page); leaf capacity and chunk sizes follow it.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 2:
        raise ValueError("keys must be a 2-D (n, dim) array")
    n = len(keys)
    if rids is None:
        rids = range(n)
    rids = list(rids)
    if len(rids) != n:
        raise ValueError(f"{n} keys but {len(rids)} rids")

    prof = profile if profile is not None else BuildProfile()
    prof.tree_name = ext.name
    prof.n_keys = n
    prof.workers = max(1, workers)

    tree = GiST(ext, store=store, page_size=page_size,
                leaf_codec=leaf_codec)
    if n == 0:
        return tree
    was_counting = tree.store.counting
    tree.store.counting = False
    t_start = time.perf_counter()
    try:
        _build(tree, keys, rids, fill, _resolve_ordering(order),
               prof.workers, oversubscribe, prof)
    finally:
        tree.store.counting = was_counting
        prof.total_seconds = time.perf_counter() - t_start
    return tree


def _build(tree: GiST, keys: np.ndarray, rids, fill: float,
           order_fn, workers: int, oversubscribe: bool,
           prof: BuildProfile) -> None:
    ext = tree.ext
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")

    # -- leaf level --------------------------------------------------------
    leaf_target = max(tree.min_entries(0),
                      int(tree.leaf_capacity * fill))
    t0 = time.perf_counter()
    order = order_fn(keys, leaf_target)
    # One gather for the whole level: every leaf's keys and rids are
    # then contiguous slices (views) of these arrays — no per-entry
    # work and no per-chunk fancy indexing.
    ordered_keys = np.ascontiguousarray(keys[order])
    ordered_rids = np.asarray(rids, dtype=np.int64)[order]
    prof.add("sort", time.perf_counter() - t0)
    preds, page_ids = _build_level(
        tree, 0, None,
        chunk_sizes(len(keys), leaf_target, tree.min_entries(0),
                    tree.leaf_capacity),
        keys=ordered_keys, rids=ordered_rids, entries=None,
        workers=workers, oversubscribe=oversubscribe, prof=prof)
    entries = [IndexEntry(p, pid) for p, pid in zip(preds, page_ids)]

    # -- upper levels -------------------------------------------------------
    level = 1
    index_target = max(tree.min_entries(1),
                       int(tree.index_capacity * fill))
    while len(entries) > 1:
        t0 = time.perf_counter()
        centers = ext.routing_points_multi([e.pred for e in entries])
        order = order_fn(centers, index_target)
        prof.add("sort", time.perf_counter() - t0)
        preds, page_ids = _build_level(
            tree, level, order,
            chunk_sizes(len(entries), index_target,
                        tree.min_entries(level), tree.index_capacity),
            keys=None, rids=None, entries=entries, workers=workers,
            oversubscribe=oversubscribe, prof=prof)
        entries = [IndexEntry(p, pid) for p, pid in zip(preds, page_ids)]
        level += 1

    root = tree.store.peek(entries[0].child)
    tree.adopt(root, height=root.level + 1, size=len(keys))


def _build_level(tree: GiST, level: int, order, sizes: List[int],
                 keys, rids, entries, workers: int, oversubscribe: bool,
                 prof: BuildProfile) -> Tuple[List, List[int]]:
    """Build one whole level; returns its (preds, page_ids) chunk-wise.

    Page ids are allocated here, in chunk order, before any node is
    built — the anchor that makes parallel builds byte-identical to
    sequential ones.
    """
    offsets = [0]
    for size in sizes:
        offsets.append(offsets[-1] + size)
    page_ids = [tree.store.allocate() for _ in sizes]
    prof.nodes_by_level[level] = len(sizes)

    use_workers = min(workers, len(sizes) // _MIN_CHUNKS_PER_WORKER)
    if not oversubscribe:
        use_workers = min(use_workers, usable_cpus())
    if use_workers > 1 and fork_available():
        prof.fork_workers = max(prof.fork_workers, use_workers)
        preds = _build_level_parallel(tree, level, order, sizes, offsets,
                                      page_ids, keys, rids, entries,
                                      use_workers, prof)
    else:
        preds, _, timings = _build_chunks(
            tree.ext, tree.store, level, order, sizes, offsets,
            0, len(sizes), page_ids, keys, rids, entries, write=True)
        for phase, seconds in timings.items():
            prof.add(phase, seconds)
    return preds, page_ids


def _build_chunks(ext, store, level: int, order, sizes, offsets,
                  lo: int, hi: int, page_ids, keys, rids, entries,
                  write: bool):
    """Assemble, bound, and (optionally) write chunks ``[lo, hi)``.

    The shared core of the sequential path and each forked worker.
    Returns ``(preds, nodes_or_None, phase_timings)``; nodes are
    returned only when ``write`` is False (the caller writes them).
    """
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    nodes = []
    for ci in range(lo, hi):
        span = slice(offsets[ci], offsets[ci] + sizes[ci])
        if level == 0:
            # keys/rids arrive pre-ordered, so a leaf is two array
            # views; entry objects materialize only if someone later
            # walks the in-memory node.
            node = Node.leaf_from_arrays(page_ids[ci], keys[span],
                                         rids[span])
        else:
            node = Node(page_ids[ci], level,
                        [entries[i] for i in order[span]])
        nodes.append(node)
    timings["pack"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    preds = ext.preds_for_nodes(
        nodes, [(level, ci) for ci in range(lo, hi)])
    timings["bp"] = time.perf_counter() - t0

    if write:
        t0 = time.perf_counter()
        _write_many(store, nodes)
        timings["write"] = time.perf_counter() - t0
        nodes = None
    return preds, nodes, timings


def _write_many(store, nodes) -> None:
    write_many = getattr(store, "write_many", None)
    if write_many is not None:
        write_many(nodes)
    else:
        for node in nodes:
            store.write(node)


#: state the forked workers inherit copy-on-write (see repro.storage.fork).
_FORK_STATE: Dict = {}


def _build_level_parallel(tree: GiST, level: int, order, sizes, offsets,
                          page_ids, keys, rids, entries, workers: int,
                          prof: BuildProfile) -> List:
    """One level via forked workers over contiguous chunk shards."""
    global _FORK_STATE
    store = tree.store
    direct = bool(getattr(store, "supports_parallel_write", False))
    # Workers either reopen the file by path (direct writes) or read
    # nothing at all, but pre-fork buffered writes must hit the OS
    # before children touch the file.
    store.flush()
    bounds = shard_bounds(len(sizes), workers)
    _FORK_STATE = {"ext": tree.ext, "store": store, "level": level,
                   "order": order, "sizes": sizes, "offsets": offsets,
                   "page_ids": page_ids, "keys": keys, "rids": rids,
                   "entries": entries, "direct": direct}
    ctx = multiprocessing.get_context("fork")
    t_pool = time.perf_counter()
    try:
        with ctx.Pool(processes=len(bounds)) as pool:
            outcomes = pool.map(_worker_build, bounds)
    finally:
        _FORK_STATE = {}
    wall = time.perf_counter() - t_pool

    # Deterministic merge: pool.map returns outcomes in shard order (=
    # chunk order) no matter which worker finished first.
    preds: List = []
    busy = 0.0
    for shard_preds, shard_nodes, timings in outcomes:
        preds.extend(shard_preds)
        for phase, seconds in timings.items():
            prof.add(phase, seconds)
            busy += seconds
        if shard_nodes is not None:
            t0 = time.perf_counter()
            _write_many(store, shard_nodes)
            prof.add("write", time.perf_counter() - t0)
    if direct:
        # The workers' writes happened in their copy-on-write memory;
        # book them in the parent so levels and counters match a
        # sequential build.
        store.note_external_writes((pid, level) for pid in page_ids)
    prof.add("merge", max(0.0, wall - busy))
    return preds


def _worker_build(bounds: Tuple[int, int]):
    """Forked worker body: build one contiguous shard of chunks.

    With direct writes the worker lands its disjoint page range through
    a private descriptor and returns only predicates; otherwise the
    nodes come back pickled for the parent to write.
    """
    lo, hi = bounds
    st = _FORK_STATE
    if st["direct"]:
        reopen_files(st["store"])
    preds, nodes, timings = _build_chunks(
        st["ext"], st["store"], st["level"], st["order"], st["sizes"],
        st["offsets"], lo, hi, st["page_ids"], st["keys"], st["rids"],
        st["entries"], write=st["direct"])
    if st["direct"]:
        st["store"].flush()
    return preds, nodes, timings


def insertion_load(ext: GiSTExtension, keys: np.ndarray,
                   rids: Optional[Sequence[int]] = None,
                   page_size: int = DEFAULT_PAGE_SIZE,
                   store=None, shuffle_seed: Optional[int] = None,
                   leaf_codec=None) -> GiST:
    """Build a tree by inserting keys one at a time (Table 2's contrast).

    ``shuffle_seed`` randomizes insertion order; ``None`` inserts in the
    given order.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = len(keys)
    if rids is None:
        rids = range(n)
    rids = list(rids)
    order = np.arange(n)
    if shuffle_seed is not None:
        order = np.random.default_rng(shuffle_seed).permutation(n)

    tree = GiST(ext, store=store, page_size=page_size,
                leaf_codec=leaf_codec)
    was_counting = tree.store.counting
    tree.store.counting = False
    try:
        for i in order:
            tree.insert(keys[i], rids[i])
    finally:
        tree.store.counting = was_counting
    return tree
