"""Space-filling-curve orderings for bulk loading.

The paper packs with STR [16]; the packed-R-tree literature's other
standard option is sorting by a space-filling curve.  Both the Morton
(Z-order) curve and the Hilbert curve (via Skilling's transpose
algorithm, AIP CP707, 2004) are provided; the bulk loader accepts any
of them, and ``bench_ablation_loaders`` compares the resulting trees.
"""

from __future__ import annotations

import numpy as np

#: quantization bits per dimension (keys must fit in uint64)
DEFAULT_BITS = 10


def _quantize(points: np.ndarray, bits: int) -> np.ndarray:
    """Scale points into the ``[0, 2**bits)`` integer grid per dim."""
    pts = np.asarray(points, dtype=np.float64)
    lo = pts.min(axis=0)
    span = np.maximum(pts.max(axis=0) - lo, 1e-300)
    cells = (1 << bits) - 1
    return ((pts - lo) / span * cells).astype(np.uint64)


def _interleave(coords: np.ndarray, bits: int) -> np.ndarray:
    """Bit-interleave per-dimension integers into one key per point."""
    n, dim = coords.shape
    if bits * dim > 63:
        raise ValueError(f"{bits} bits x {dim} dims exceeds uint64 keys")
    keys = np.zeros(n, dtype=np.uint64)
    for bit in range(bits):
        for d in range(dim):
            keys |= ((coords[:, d] >> np.uint64(bit)) & np.uint64(1)) \
                << np.uint64(bit * dim + d)
    return keys


def morton_order(points: np.ndarray, capacity: int = None,
                 bits: int = DEFAULT_BITS) -> np.ndarray:
    """Indices sorting ``points`` along the Morton (Z-order) curve.

    ``capacity`` is accepted (and ignored) for loader compatibility
    with :func:`repro.bulk.str_pack.str_order`.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D (n, dim) array")
    if len(pts) == 0:
        return np.empty(0, dtype=np.intp)
    bits = min(bits, 63 // pts.shape[1])
    keys = _interleave(_quantize(pts, bits), bits)
    return np.argsort(keys, kind="stable")


def _axes_to_transpose(coords: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's in-place Hilbert transform, vectorized over points.

    Input/output are ``(n, dim)`` uint64 arrays; the output is the
    Hilbert integer in "transpose" form (one bit-plane per dimension).
    """
    x = coords.copy()
    n, dim = x.shape
    m = np.uint64(1 << (bits - 1))

    # Inverse undo
    q = m
    while q > 1:
        p = np.uint64(q - 1)
        for i in range(dim):
            hit = (x[:, i] & q) != 0
            x[hit, 0] ^= p
            miss = ~hit
            t = (x[miss, 0] ^ x[miss, i]) & p
            x[miss, 0] ^= t
            x[miss, i] ^= t
        q = np.uint64(q >> np.uint64(1))

    # Gray encode
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > 1:
        hit = (x[:, dim - 1] & q) != 0
        t[hit] ^= np.uint64(q - 1)
        q = np.uint64(q >> np.uint64(1))
    for i in range(dim):
        x[:, i] ^= t
    return x


def hilbert_order(points: np.ndarray, capacity: int = None,
                  bits: int = DEFAULT_BITS) -> np.ndarray:
    """Indices sorting ``points`` along the Hilbert curve."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D (n, dim) array")
    if len(pts) == 0:
        return np.empty(0, dtype=np.intp)
    bits = min(bits, 63 // pts.shape[1])
    transpose = _axes_to_transpose(_quantize(pts, bits), bits)
    # In transpose form, dimension 0 carries the most significant bit
    # of each bit-plane: interleave with dim 0 highest.
    keys = _interleave(transpose[:, ::-1], bits)
    return np.argsort(keys, kind="stable")
