"""Sort-Tile-Recursive (STR) packing [Leutenegger, Lopez & Edgington 96].

STR tiles the data space into roughly hyper-square cells of one page
each: sort by the first coordinate, cut into vertical slabs sized so each
slab holds a whole number of pages, then recurse on the remaining
coordinates within each slab.  The resulting order packs neighbors onto
the same page, which is why the paper's bulk-loaded trees show almost no
clustering loss.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np


def str_order(points: np.ndarray, capacity: int) -> np.ndarray:
    """Return indices permuting ``points`` into STR tile order.

    ``capacity`` is the number of points per page the caller intends to
    pack; it controls the tiling granularity.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D (n, dim) array")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    n, dim = pts.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)

    def recurse(indices: np.ndarray, d: int) -> np.ndarray:
        order = indices[np.argsort(pts[indices, d], kind="stable")]
        if d == dim - 1 or len(indices) <= capacity:
            return order
        pages = math.ceil(len(indices) / capacity)
        slabs = math.ceil(pages ** (1.0 / (dim - d)))
        slab_pages = math.ceil(pages / slabs)
        slab_size = slab_pages * capacity
        parts = [recurse(order[i:i + slab_size], d + 1)
                 for i in range(0, len(order), slab_size)]
        return np.concatenate(parts)

    return recurse(np.arange(n, dtype=np.intp), 0)


def chunk_sizes(n: int, target: int, min_entries: int,
                capacity: int = None) -> List[int]:
    """Page sizes for packing ``n`` items ``target`` per page.

    Packs full pages and fixes up a too-small tail by borrowing from the
    previous page, so every page (except a lone single page) meets
    ``min_entries`` and none exceeds ``capacity`` (default: ``target``).
    """
    if n <= 0:
        return []
    if target < 1:
        raise ValueError(f"target must be >= 1, got {target}")
    capacity = target if capacity is None else capacity
    if target > capacity:
        raise ValueError(f"target {target} exceeds capacity {capacity}")
    sizes = [target] * (n // target)
    tail = n % target
    if tail:
        sizes.append(tail)
    if len(sizes) >= 2 and sizes[-1] < min_entries:
        need = min_entries - sizes[-1]
        give = min(need, sizes[-2] - min_entries)
        if give > 0:
            sizes[-2] -= give
            sizes[-1] += give
        if sizes[-1] < min_entries:
            if sizes[-2] + sizes[-1] <= capacity:
                # Tiny n: merge the tail into its neighbor.  (Pop the
                # tail first — `sizes[-2] += sizes.pop()` would shrink
                # the list before the indexed store resolves.)
                tail = sizes.pop()
                sizes[-1] += tail
            else:
                # Rebalance the last two pages evenly.
                both = sizes[-2] + sizes[-1]
                sizes[-2] = both // 2
                sizes[-1] = both - both // 2
    assert sum(sizes) == n
    return sizes
