"""Central scale and layout constants for the reproduction.

The paper's experiments use 221,231 blobs from 35,000 images, 5,531
nearest-neighbor queries, 200 neighbors per query, and 5-dimensional
SVD-reduced color feature vectors.  Pure-Python trees cannot process the
full corpus in benchmark time, so every experiment is parameterized by a
:class:`ScaleProfile`; the ``REPRO_SCALE`` environment variable selects a
profile for the benchmark suite (see DESIGN.md section 5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Default page size in bytes (the paper's 8 KB).  With 8-byte numbers a
#: leaf holds 170 five-dimensional entries, matching the paper's
#: "between 100 and 200 data points" per leaf.
DEFAULT_PAGE_SIZE = 8192

#: Bytes per stored number (C doubles in the original libgist).
NUMBER_SIZE = 8

#: Target node utilization used by the amdb utilization-loss metric.
TARGET_UTILIZATION = 0.7

#: Dimensionality the paper settles on for indexed vectors (section 3).
INDEX_DIMENSIONS = 5

#: Neighbors retrieved per access-method query (section 3).
NEIGHBORS_PER_QUERY = 200

#: Full Blobworld color-descriptor dimensionality (section 3).
FULL_DESCRIPTOR_DIMENSIONS = 218

#: Images the full Blobworld ranking returns to the user (Figure 6 caption).
FULL_QUERY_RESULT_IMAGES = 40

#: Random bipartition samples used by the aMAP approximation (section 5.1).
AMAP_SAMPLES = 1024

#: Bites kept by the XJB bounding predicate in the paper (section 6).
XJB_DEFAULT_X = 10


@dataclass(frozen=True)
class ScaleProfile:
    """A coherent set of experiment sizes.

    Attributes mirror the paper's corpus statistics; each profile scales
    them down together so per-query result sizes and tree shapes remain
    comparable.
    """

    name: str
    num_blobs: int
    num_images: int
    num_queries: int
    neighbors: int
    page_size: int = DEFAULT_PAGE_SIZE

    @property
    def blobs_per_image(self) -> float:
        return self.num_blobs / self.num_images


SCALE_PROFILES = {
    "smoke": ScaleProfile("smoke", num_blobs=2_000, num_images=320,
                          num_queries=60, neighbors=50),
    "default": ScaleProfile("default", num_blobs=20_000, num_images=3_200,
                            num_queries=400, neighbors=200),
    "full": ScaleProfile("full", num_blobs=60_000, num_images=9_500,
                         num_queries=1_200, neighbors=200),
}

#: The paper's actual corpus, recorded for EXPERIMENTS.md comparisons.
PAPER_SCALE = ScaleProfile("paper", num_blobs=221_231, num_images=35_000,
                           num_queries=5_531, neighbors=200, page_size=8192)


def active_profile() -> ScaleProfile:
    """Return the profile selected by ``REPRO_SCALE`` (default ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE {name!r}; "
            f"choose one of {sorted(SCALE_PROFILES)}"
        ) from None
