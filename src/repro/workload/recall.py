"""Recall evaluation against full Blobworld queries (paper Figure 6).

For each data dimensionality D and each number of retrieved blobs n,
the recall is the fraction of the top-40 images of a *full* Blobworld
query that also appear when only n nearest blobs under the D-dimensional
Euclidean distance are re-ranked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.blobworld.dataset import BlobCorpus
# recall() is defined once, in repro.blobworld.query (workload already
# depends on blobworld; the reverse import would cycle), and re-exported
# here as the workload-facing name.
from repro.blobworld.query import BlobworldEngine, recall
from repro.constants import FULL_QUERY_RESULT_IMAGES

__all__ = ["RecallPoint", "recall", "recall_curve"]


@dataclass
class RecallPoint:
    """Mean recall for one (dims, retrieved) configuration."""

    dims: int
    retrieved: int
    mean_recall: float
    num_queries: int


def recall_curve(corpus: BlobCorpus, query_blobs: Sequence[int],
                 dims_list: Sequence[int],
                 retrieved_list: Sequence[int],
                 top_images: int = FULL_QUERY_RESULT_IMAGES
                 ) -> List[RecallPoint]:
    """The full Figure 6 grid: recall for every (D, n) combination."""
    engine = BlobworldEngine(corpus)
    full_results = {q: engine.full_query(q, top_images)
                    for q in query_blobs}

    points: List[RecallPoint] = []
    for dims in dims_list:
        reduced = corpus.reduced(dims)
        for retrieved in retrieved_list:
            values = []
            for q in query_blobs:
                diff = reduced - reduced[q]
                dists = (diff * diff).sum(axis=1)
                candidates = np.argpartition(dists, min(retrieved,
                                                        len(dists) - 1))
                candidates = candidates[:retrieved]
                low = engine.rerank(q, candidates, top_images)
                values.append(recall(full_results[q], low))
            points.append(RecallPoint(dims=dims, retrieved=retrieved,
                                      mean_recall=float(np.mean(values)),
                                      num_queries=len(query_blobs)))
    return points
