"""Sequential-vs-batched workload throughput benchmark.

One callable (:func:`run_bench`) behind both ``python -m repro bench``
and the CI perf-smoke job: build disk-backed indexes over a synthetic
corpus, run the same k-NN workload through the sequential runner and
through :func:`~repro.workload.runner.run_workload_batched`, verify the
two agree bit for bit (results, tie order, per-query access lists), and
report throughput.

The trees are deliberately file-backed (:class:`~repro.storage.diskfile.
FilePageFile`): with real page images every sequential access pays a
decode, which is exactly the cost the batched engine amortizes to once
per query block — the setting the paper's I/O economics assume.  The
amdb loss stage runs with a precomputed trivial clustering so both
engines pay the same small analysis constant and the hypergraph
partitioner stays out of a *throughput* measurement.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.amdb.partition import Clustering
from repro.bulk import bulk_load
from repro.constants import (DEFAULT_PAGE_SIZE, INDEX_DIMENSIONS,
                             NEIGHBORS_PER_QUERY, TARGET_UTILIZATION)
from repro.core.api import make_extension
from repro.storage.diskfile import FilePageFile
from repro.workload.generator import make_workload
from repro.workload.runner import run_workload, run_workload_batched


def run_bench(num_blobs: int = 20_000, num_queries: int = 2_000,
              k: int = NEIGHBORS_PER_QUERY,
              methods: Sequence[str] = ("rtree", "xjb"),
              dims: int = INDEX_DIMENSIONS,
              page_size: int = DEFAULT_PAGE_SIZE,
              batch: bool = True, workers: int = 1,
              block_size: Optional[int] = None,
              seed: int = 0, workdir: Optional[str] = None) -> Dict:
    """Time sequential vs batched execution of one synthetic workload.

    Returns a JSON-ready dict: the configuration, and per method the
    wall-clock seconds, queries per second, speedup, I/O totals, and the
    parity verdict.  ``batch=False`` times only the sequential baseline.
    A parity failure does not raise — it is recorded (``parity_ok``)
    so callers (CLI, CI) can fail loudly *after* writing the evidence.
    """
    from repro.blobworld import build_corpus

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)
    workload = make_workload(vectors, num_queries, k=k, seed=seed + 1)

    results: List[Dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp
        for method in methods:
            results.append(_bench_method(
                method, vectors, workload, page_size=page_size,
                batch=batch, workers=workers, block_size=block_size,
                path=os.path.join(base, f"bench_{method}.pages")))

    out = {
        "bench": "batch_knn",
        "config": {
            "num_blobs": num_blobs,
            "num_queries": num_queries,
            "k": k,
            "dims": dims,
            "page_size": page_size,
            "workers": workers,
            "block_size": block_size,
            "seed": seed,
        },
        "methods": results,
    }
    if batch:
        out["parity_ok"] = all(r["parity_ok"] for r in results)
        out["min_speedup"] = min(r["speedup"] for r in results)
    return out


def _bench_method(method: str, vectors: np.ndarray, workload,
                  page_size: int, batch: bool, workers: int,
                  block_size: Optional[int], path: str) -> Dict:
    ext = make_extension(method, vectors.shape[1])
    store = FilePageFile.for_extension(path, ext, page_size=page_size)
    tree = bulk_load(ext, vectors, page_size=page_size, store=store)
    clustering = _trivial_clustering(len(vectors), tree.leaf_capacity)

    t0 = time.perf_counter()
    seq = run_workload(tree, workload, vectors, clustering=clustering)
    seq_seconds = time.perf_counter() - t0

    row = {
        "method": method,
        "seq_seconds": round(seq_seconds, 4),
        "seq_qps": round(workload.num_queries / seq_seconds, 2),
        "leaf_ios": seq.profile.total_leaf_ios,
        "inner_ios": seq.profile.total_inner_ios,
    }
    if not batch:
        return row

    t0 = time.perf_counter()
    bat = run_workload_batched(tree, workload, vectors,
                               clustering=clustering, workers=workers,
                               block_size=block_size)
    bat_seconds = time.perf_counter() - t0

    mismatches = profile_mismatches(seq.profile, bat.profile)
    row.update({
        "batch_seconds": round(bat_seconds, 4),
        "batch_qps": round(workload.num_queries / bat_seconds, 2),
        "speedup": round(seq_seconds / bat_seconds, 2),
        "parity_ok": not mismatches,
        "mismatches": mismatches,
    })
    return row


def profile_mismatches(seq_profile, bat_profile,
                       limit: int = 5) -> List[str]:
    """Differences between two profiles of the same workload.

    Empty = bit-identical: same results (distances, rids, tie order)
    and same per-query leaf/inner access lists in the same order.
    """
    problems: List[str] = []
    if seq_profile.num_queries != bat_profile.num_queries:
        return [f"trace counts differ: {seq_profile.num_queries} "
                f"vs {bat_profile.num_queries}"]
    for ts, tb in zip(seq_profile.traces, bat_profile.traces):
        if ts.results != tb.results:
            problems.append(f"query {ts.qid}: results differ")
        elif ts.leaf_accesses != tb.leaf_accesses:
            problems.append(f"query {ts.qid}: leaf accesses differ")
        elif ts.inner_accesses != tb.inner_accesses:
            problems.append(f"query {ts.qid}: inner accesses differ")
        if len(problems) >= limit:
            problems.append("...")
            break
    return problems


# -- serving benchmark -------------------------------------------------------

def run_serve_bench(num_blobs: int = 20_000, num_queries: int = 2_000,
                    num_candidates: int = NEIGHBORS_PER_QUERY,
                    methods: Sequence[str] = ("rtree", "xjb"),
                    dims: int = INDEX_DIMENSIONS,
                    page_size: int = DEFAULT_PAGE_SIZE,
                    distinct_fraction: float = 0.25,
                    cache_size: int = 4096,
                    block_size: Optional[int] = None,
                    request_size: int = 64,
                    seed: int = 0, workdir: Optional[str] = None) -> Dict:
    """Time the end-to-end two-stage serving pipeline, three ways.

    The query stream draws ``num_queries`` blobs from a pool of
    ``distinct_fraction * num_queries`` distinct ones — repeated popular
    queries, the serving-cache scenario.  Per method, the same stream
    runs through (1) the sequential baseline — one
    :meth:`~repro.blobworld.query.BlobworldEngine.am_query` per request
    over a pread store, no cache; (2) the batched pipeline over the same
    pread store; (3) the batched pipeline over an mmap store with a
    result cache — the full serving layer, dispatched in request blocks
    of ``request_size`` queries so every block yields one latency
    sample.  All three must return identical image lists per query;
    like :func:`run_bench`, a parity failure is recorded
    (``parity_ok``), not raised, so callers can fail after writing the
    evidence.  ``speedup`` is baseline over the full serving
    configuration.  Rows carry p50/p95/p99 latency for the sequential
    baseline (per query) and the serving configuration (per request
    block), directly comparable against the sharded daemon's tails.
    """
    from repro.amdb.profiler import ServeProfile
    from repro.blobworld import BlobworldEngine, QueryResultCache, \
        build_corpus

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)
    rng = np.random.default_rng(seed + 2)
    pool = rng.choice(num_blobs,
                      size=max(1, int(distinct_fraction * num_queries)),
                      replace=False)
    stream = [int(b) for b in rng.choice(pool, size=num_queries)]

    results: List[Dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp
        for method in methods:
            results.append(_serve_bench_method(
                method, corpus, vectors, stream,
                num_candidates=num_candidates, dims=dims,
                page_size=page_size, cache_size=cache_size,
                block_size=block_size, request_size=request_size,
                base=base,
                profile_cls=ServeProfile, engine_cls=BlobworldEngine,
                cache_cls=QueryResultCache))

    return {
        "bench": "serve",
        "config": {
            "num_blobs": num_blobs,
            "num_queries": num_queries,
            "num_candidates": num_candidates,
            "dims": dims,
            "page_size": page_size,
            "distinct_queries": len(pool),
            "cache_size": cache_size,
            "block_size": block_size,
            "request_size": request_size,
            "seed": seed,
        },
        "methods": results,
        "parity_ok": all(r["parity_ok"] for r in results),
        "min_speedup": min(r["speedup"] for r in results),
    }


def _serve_bench_method(method: str, corpus, vectors: np.ndarray,
                        stream: List[int], num_candidates: int, dims: int,
                        page_size: int, cache_size: int,
                        block_size: Optional[int], request_size: int,
                        base: str,
                        profile_cls, engine_cls, cache_cls) -> Dict:
    from repro.amdb.profiler import latency_percentiles

    ext = make_extension(method, vectors.shape[1])
    trees = {}
    for mode in ("pread", "mmap"):
        # Deterministic bulk loads: both stores hold byte-identical
        # trees, so the pipelines differ only in how they read.
        store = FilePageFile.for_extension(
            os.path.join(base, f"serve_{method}_{mode}.pages"), ext,
            page_size=page_size, mmap_mode=(mode == "mmap"))
        trees[mode] = bulk_load(ext, vectors, page_size=page_size,
                                store=store)

    baseline = engine_cls(corpus)
    seq_latencies: List[float] = []
    reference = []
    t0 = time.perf_counter()
    for q in stream:
        tq = time.perf_counter()
        reference.append(baseline.am_query(trees["pread"], q,
                                           num_candidates, dims))
        seq_latencies.append(time.perf_counter() - tq)
    seq_seconds = time.perf_counter() - t0

    batch_profile = profile_cls(tree_name=method, store_mode="pread",
                                queries=len(stream))
    batch_engine = engine_cls(corpus)
    t0 = time.perf_counter()
    batched = batch_engine.am_query_batch(
        trees["pread"], stream, num_candidates, dims,
        block_size=block_size, profile=batch_profile)
    batch_profile.total_seconds = time.perf_counter() - t0

    # The serving configuration dispatches the stream the way a daemon
    # would accept it — request blocks — so each block's wall time is
    # one latency sample for the percentile summary.
    cache = cache_cls(cache_size)
    serve_profile = profile_cls(tree_name=method, store_mode="mmap",
                                queries=len(stream))
    serve_engine = engine_cls(corpus, cache=cache)
    served: List[List[int]] = []
    t0 = time.perf_counter()
    for start in range(0, len(stream), request_size):
        tq = time.perf_counter()
        served.extend(serve_engine.am_query_batch(
            trees["mmap"], stream[start:start + request_size],
            num_candidates, dims,
            block_size=block_size, profile=serve_profile))
        serve_profile.record_latency(time.perf_counter() - tq)
    serve_profile.total_seconds = time.perf_counter() - t0
    serve_profile.note_cache(cache.stats)

    for tree in trees.values():
        tree.store.close()

    return {
        "method": method,
        "seq_seconds": round(seq_seconds, 4),
        "seq_qps": round(len(stream) / seq_seconds, 2),
        "seq_latency_ms": latency_percentiles(seq_latencies),
        "batch_seconds": round(batch_profile.total_seconds, 4),
        "batch_qps": round(len(stream) / batch_profile.total_seconds, 2),
        "serve_seconds": round(serve_profile.total_seconds, 4),
        "serve_qps": round(len(stream) / serve_profile.total_seconds, 2),
        "serve_latency_ms": latency_percentiles(serve_profile.latencies),
        "speedup": round(seq_seconds / serve_profile.total_seconds, 2),
        "speedup_batch_only": round(
            seq_seconds / batch_profile.total_seconds, 2),
        "cache_hit_rate": round(serve_profile.cache_hit_rate, 4),
        "parity_ok": batched == reference and served == reference,
        "batch_profile": batch_profile.as_dict(),
        "serve_profile": serve_profile.as_dict(),
    }


def format_serve_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_serve_bench` result."""
    cfg = result["config"]
    lines = [
        f"{cfg['num_queries']} queries ({cfg['distinct_queries']} distinct) "
        f"x {cfg['num_candidates']} candidates over {cfg['num_blobs']} "
        f"blobs ({cfg['dims']}D), page size {cfg['page_size']}",
        f"{'method':<8} {'seq s':>8} {'seq q/s':>9} {'batch s':>8} "
        f"{'serve s':>8} {'serve q/s':>10} {'speedup':>8} {'parity':>7}",
    ]
    for row in result["methods"]:
        lines.append(
            f"{row['method']:<8} {row['seq_seconds']:>8.2f} "
            f"{row['seq_qps']:>9.1f} {row['batch_seconds']:>8.2f} "
            f"{row['serve_seconds']:>8.2f} {row['serve_qps']:>10.1f} "
            f"{row['speedup']:>7.2f}x "
            f"{'ok' if row['parity_ok'] else 'FAIL':>7}")
        stages = row["serve_profile"]["stage_seconds"]
        lines.append(
            "    serve stages: " + ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in stages.items())
            + f"; cache hit rate {row['cache_hit_rate']:.0%}")
        seq_lat, serve_lat = row["seq_latency_ms"], row["serve_latency_ms"]
        if seq_lat and serve_lat:
            lines.append(
                f"    latency ms: seq p50/p95/p99 "
                f"{seq_lat['p50_ms']}/{seq_lat['p95_ms']}"
                f"/{seq_lat['p99_ms']}; serve blocks "
                f"{serve_lat['p50_ms']}/{serve_lat['p95_ms']}"
                f"/{serve_lat['p99_ms']}")
    return "\n".join(lines)


# -- sharded serving benchmark ------------------------------------------------

#: every AM family the parity gate must hold for
ALL_FAMILIES = ("rtree", "rstar", "sstree", "srtree", "amap", "jb", "xjb")


def run_shard_bench(num_blobs: int = 20_000, num_queries: int = 2_000,
                    num_candidates: int = NEIGHBORS_PER_QUERY,
                    method: str = "rtree",
                    parity_methods: Sequence[str] = ALL_FAMILIES,
                    dims: int = INDEX_DIMENSIONS,
                    page_size: int = DEFAULT_PAGE_SIZE,
                    shards_list: Sequence[int] = (1, 2, 4),
                    transports: Sequence[str] = ("framed", "shm"),
                    windows: Sequence[int] = (1, 4),
                    parity_shards: int = 2,
                    parity_queries: int = 128,
                    request_size: int = 64,
                    distinct_fraction: float = 0.25,
                    cache_size: int = 4096,
                    seed: int = 0, workdir: Optional[str] = None) -> Dict:
    """Benchmark the sharded serving daemon, three phases.

    **Parity**: for every AM family, a ``parity_shards``-way
    :class:`~repro.serving.coordinator.ShardedService` answers the same
    query block as an unsharded tree — merged canonical k-NN must be
    bit-identical to the unsharded canonical answer, and the two-stage
    image lists must match the unsharded
    :meth:`~repro.blobworld.query.BlobworldEngine.am_query_batch`
    baseline; an sq8 row checks the quantized path for ``method``.

    **Scaling**: the full ``num_queries`` stream is served at every
    shard count in ``shards_list`` crossed with every transport in
    ``transports`` and pipeline window in ``windows`` — one set of
    built trees per shard count, restarted per combination — and
    compared against one single-process ``am_query_batch`` over an
    unsharded tree, with p50/p95/p99 request latency, queue depth,
    and the transport byte split per point.  Zero-copy is gated
    honestly: every shm row must report zero hot-path pickled bytes.

    **Degradation**: one worker is killed mid-stream under the widest
    pipeline window; the remaining shards must answer (degraded, with
    a :class:`~repro.gist.degrade.DegradationReport`) rather than
    raise, and closing the service must leave no shared-memory
    segment behind.

    Failures are recorded (``parity_ok`` / ``throughput_ok`` /
    ``zero_copy_ok`` / ``degraded_ok``), not raised, so callers can
    fail after writing the evidence.
    """
    from repro.amdb.profiler import ShardServeProfile
    from repro.blobworld import BlobworldEngine, QueryResultCache, \
        build_corpus
    from repro.serving import ShardedService, canonical_knn_batch, \
        shm_available
    from repro.serving.shm import segment_prefix

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)
    rng = np.random.default_rng(seed + 2)
    pool = rng.choice(num_blobs,
                      size=max(1, int(distinct_fraction * num_queries)),
                      replace=False)
    stream = [int(b) for b in rng.choice(pool, size=num_queries)]
    parity_stream = [int(b) for b in
                     rng.choice(num_blobs, size=parity_queries,
                                replace=False)]
    knn_queries = vectors[parity_stream[:min(32, len(parity_stream))]]

    transports = list(dict.fromkeys(transports))
    if "shm" in transports and not shm_available():
        transports = [t for t in transports if t != "shm"]
    windows = sorted(dict.fromkeys(max(1, int(w)) for w in windows))

    def leaked_segments() -> List[str]:
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            return []
        prefix = segment_prefix().lstrip("/")
        return sorted(name for name in os.listdir(shm_dir)
                      if name.startswith(prefix))

    out: Dict = {
        "bench": "shard_serve",
        "config": {
            "num_blobs": num_blobs,
            "num_queries": num_queries,
            "num_candidates": num_candidates,
            "method": method,
            "dims": dims,
            "page_size": page_size,
            "shards_list": list(shards_list),
            "transports": transports,
            "windows": windows,
            "parity_shards": parity_shards,
            "parity_queries": parity_queries,
            "request_size": request_size,
            "distinct_queries": len(pool),
            "cache_size": cache_size,
            "seed": seed,
        },
    }

    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp

        # -- phase 1: parity across every family -----------------------------
        parity_rows: List[Dict] = []
        parity_cases = [(fam, "f64") for fam in parity_methods]
        parity_cases.append((method, "sq8"))
        for fam, codec in parity_cases:
            ext = make_extension(fam, dims)
            store = FilePageFile.for_extension(
                os.path.join(base, f"shardref_{fam}_{codec}.pages"), ext,
                page_size=page_size, leaf_codec=codec)
            ref_tree = bulk_load(ext, vectors, page_size=page_size,
                                 store=store)
            engine = BlobworldEngine(corpus)
            ref_images = engine.am_query_batch(
                ref_tree, parity_stream, num_candidates, dims)
            ref_knn = (canonical_knn_batch(ref_tree, knn_queries,
                                           num_candidates)
                       if codec == "f64" else None)
            parity_dir = os.path.join(base, f"parity_{fam}_{codec}")
            os.makedirs(parity_dir, exist_ok=True)
            service = ShardedService.build(
                corpus, parity_shards, method=fam, dims=dims,
                page_size=page_size, codec=codec,
                workdir=parity_dir, cache_size=0)
            with service:
                got_images = service.am_query_batch(parity_stream,
                                                    num_candidates)
                knn_ok = True
                if ref_knn is not None:
                    knn_ok = service.knn_batch(
                        knn_queries, num_candidates) == ref_knn
            store.close()
            parity_rows.append({
                "method": fam,
                "codec": codec,
                "images_ok": got_images == ref_images,
                "knn_ok": knn_ok,
                "parity_ok": knn_ok and got_images == ref_images,
            })
        out["parity"] = parity_rows
        out["parity_ok"] = all(r["parity_ok"] for r in parity_rows)

        # -- phase 2: scaling ------------------------------------------------
        ext = make_extension(method, dims)
        store = FilePageFile.for_extension(
            os.path.join(base, f"shardbase_{method}.pages"), ext,
            page_size=page_size)
        base_tree = bulk_load(ext, vectors, page_size=page_size,
                              store=store)
        base_engine = BlobworldEngine(corpus,
                                      cache=QueryResultCache(cache_size))
        t0 = time.perf_counter()
        baseline_images = base_engine.am_query_batch(
            base_tree, stream, num_candidates, dims)
        baseline_seconds = time.perf_counter() - t0
        store.close()
        out["baseline"] = {
            "seconds": round(baseline_seconds, 4),
            "qps": round(len(stream) / baseline_seconds, 2),
        }

        scaling_rows: List[Dict] = []
        for num_shards in shards_list:
            shard_dir = os.path.join(base, f"scale_{num_shards}")
            os.makedirs(shard_dir, exist_ok=True)
            # One set of built trees per shard count; each transport x
            # window combination restarts the fleet over them.
            service = ShardedService.build(
                corpus, num_shards, method=method, dims=dims,
                page_size=page_size, workdir=shard_dir,
                cache_size=cache_size, window=max(windows))
            try:
                for transport in transports:
                    for window in windows:
                        # A fresh result cache per combination keeps
                        # the hit pattern identical across the matrix.
                        service.cache = (QueryResultCache(cache_size)
                                         if cache_size else None)
                        service.start(transport=transport,
                                      window=window)
                        profile = ShardServeProfile(
                            method=method, codec="f64",
                            num_shards=num_shards,
                            request_size=request_size)
                        t0 = time.perf_counter()
                        served = service.serve_stream(
                            stream, num_candidates,
                            request_size=request_size,
                            profile=profile, window=window)
                        profile.total_seconds = \
                            time.perf_counter() - t0
                        service.gather_stats(profile)
                        service.stop()
                        seconds = profile.total_seconds
                        pdict = profile.as_dict()
                        scaling_rows.append({
                            "shards": num_shards,
                            "transport": service.transport_used,
                            "window": window,
                            "seconds": round(seconds, 4),
                            "qps": round(len(stream) / seconds, 2),
                            "speedup_vs_single": round(
                                baseline_seconds / seconds, 2),
                            "parity_ok": served == baseline_images,
                            "latency_ms": pdict["latency_ms"],
                            "queue_depth": pdict["queue_depth"],
                            "transport_bytes": pdict["transport_bytes"],
                            "overlap_seconds": pdict["overlap_seconds"],
                            "degraded_requests":
                                profile.degraded_requests,
                            "profile": pdict,
                        })
            finally:
                service.close()
        out["scaling"] = scaling_rows
        out["parity_ok"] = out["parity_ok"] \
            and all(r["parity_ok"] for r in scaling_rows)
        out["throughput_ok"] = any(
            r["shards"] >= 2 and r["speedup_vs_single"] > 1.0
            for r in scaling_rows)
        # Zero-copy gate: no shm row may pickle hot-path bytes.
        shm_rows = [r for r in scaling_rows if r["transport"] == "shm"]
        out["zero_copy_ok"] = bool(shm_rows) and all(
            r["transport_bytes"].get("pickled", 0) == 0
            for r in shm_rows) if "shm" in transports else True
        # Pipelining gate: shm + widest window vs the serial framed
        # path at the same shard count (PR-8's wire protocol).
        def _row(num_shards: int, transport: str, window: int):
            for r in scaling_rows:
                if (r["shards"], r["transport"],
                        r["window"]) == (num_shards, transport, window):
                    return r
            return None

        pipelined: Dict = {}
        pipe_shards = next((s for s in shards_list if s >= 2), None)
        if pipe_shards is not None and "shm" in transports \
                and "framed" in transports and len(windows) > 1:
            serial = _row(pipe_shards, "framed", min(windows))
            piped = _row(pipe_shards, "shm", max(windows))
            shm_serial = _row(pipe_shards, "shm", min(windows))
            if serial and piped:
                pipelined = {
                    "shards": pipe_shards,
                    "serial_seconds": serial["seconds"],
                    "pipelined_seconds": piped["seconds"],
                    "speedup": round(
                        serial["seconds"] / piped["seconds"], 2),
                    "speedup_vs_single":
                        piped["speedup_vs_single"],
                    "coalesced": piped["profile"].get("coalesced", 0),
                }
                if shm_serial:
                    # Window effect with the transport held fixed —
                    # the pipelining win proper, untangled from the
                    # shm-vs-framed transport difference.
                    pipelined["window_speedup"] = round(
                        shm_serial["seconds"] / piped["seconds"], 2)
        out["pipelined"] = pipelined

        # -- phase 3: degraded answers, not exceptions -----------------------
        kill_dir = os.path.join(base, "kill")
        os.makedirs(kill_dir, exist_ok=True)
        service = ShardedService.build(
            corpus, max(2, parity_shards), method=method, dims=dims,
            page_size=page_size, workdir=kill_dir, cache_size=0,
            window=max(windows))
        degraded_row: Dict = {"ok": False}
        with service:
            # Warm the pipeline, then take a worker down mid-stream:
            # the in-flight window must drain degraded, not hang.
            service.serve_stream(stream[:4 * request_size],
                                 num_candidates,
                                 request_size=request_size)
            service.kill_shard(0)
            try:
                answers = service.serve_stream(
                    parity_stream[:2 * request_size], num_candidates,
                    request_size=request_size)
                degraded_row = {
                    "ok": service.degradation.is_degraded
                    and len(answers) == min(2 * request_size,
                                            len(parity_stream)),
                    "transport": service.transport_used,
                    "degraded_requests": service.degraded_requests,
                    "summary": service.degradation.summary(),
                    "heartbeats": service.registry.snapshot(),
                }
            except Exception as exc:
                degraded_row = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
        leaked = leaked_segments()
        degraded_row["leaked_segments"] = leaked
        degraded_row["ok"] = bool(degraded_row["ok"]) and not leaked
        out["degraded"] = degraded_row
        out["degraded_ok"] = bool(degraded_row["ok"])

    return out


def format_shard_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_shard_bench`
    result."""
    cfg = result["config"]
    lines = [
        f"{cfg['num_queries']} queries ({cfg['distinct_queries']} distinct) "
        f"x {cfg['num_candidates']} candidates over {cfg['num_blobs']} "
        f"blobs ({cfg['dims']}D), request blocks of "
        f"{cfg['request_size']}",
        f"parity at {cfg['parity_shards']} shards "
        f"({cfg['parity_queries']} queries):",
    ]
    for row in result["parity"]:
        lines.append(
            f"  {row['method']:<8} {row['codec']:<5} "
            f"knn {'ok' if row['knn_ok'] else 'FAIL'}, "
            f"images {'ok' if row['images_ok'] else 'FAIL'}")
    baseline = result["baseline"]
    lines.append(
        f"single-process baseline ({cfg['method']}): "
        f"{baseline['seconds']:.2f}s, {baseline['qps']:.1f} q/s")
    lines.append(
        f"{'shards':>7} {'trans':>7} {'win':>4} {'secs':>8} {'q/s':>9} "
        f"{'speedup':>8} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
        f"{'pickled':>8} {'parity':>7}")
    for row in result["scaling"]:
        lat = row["latency_ms"]
        lines.append(
            f"{row['shards']:>7} {row.get('transport', '?'):>7} "
            f"{row.get('window', 1):>4} {row['seconds']:>8.2f} "
            f"{row['qps']:>9.1f} {row['speedup_vs_single']:>7.2f}x "
            f"{lat.get('p50_ms', 0):>8.1f} {lat.get('p95_ms', 0):>8.1f} "
            f"{lat.get('p99_ms', 0):>8.1f} "
            f"{row.get('transport_bytes', {}).get('pickled', 0):>8} "
            f"{'ok' if row['parity_ok'] else 'FAIL':>7}")
    pipelined = result.get("pipelined") or {}
    if pipelined:
        window_note = ""
        if "window_speedup" in pipelined:
            window_note = (f", window effect at fixed transport "
                           f"{pipelined['window_speedup']:.2f}x")
        lines.append(
            f"shm+pipelined at {pipelined['shards']} shards: "
            f"{pipelined['speedup']:.2f}x over the serial framed path "
            f"({pipelined['serial_seconds']:.2f}s -> "
            f"{pipelined['pipelined_seconds']:.2f}s), "
            f"{pipelined['speedup_vs_single']:.2f}x over "
            f"single-process{window_note}, "
            f"{pipelined.get('coalesced', 0)} queries coalesced "
            f"in flight")
    if "zero_copy_ok" in result:
        lines.append(
            f"zero-copy: "
            f"{'ok (shm rows pickle 0 hot-path bytes)' if result['zero_copy_ok'] else 'FAIL'}")
    degraded = result["degraded"]
    leaked = degraded.get("leaked_segments", [])
    lines.append(
        f"kill-one-worker: "
        f"{'degraded answer ok' if degraded['ok'] else 'FAIL'}"
        + (f" ({degraded.get('error')})" if degraded.get("error") else "")
        + (f", LEAKED {len(leaked)} shm segment(s)" if leaked
           else ", no shm segments leaked"))
    return "\n".join(lines)


# -- quantized-codec serving benchmark ---------------------------------------

def run_quantized_bench(num_blobs: int = 20_000, num_queries: int = 2_000,
                        num_candidates: int = NEIGHBORS_PER_QUERY,
                        methods: Sequence[str] = ("rtree", "xjb"),
                        dims: int = INDEX_DIMENSIONS,
                        page_size: int = DEFAULT_PAGE_SIZE,
                        block_size: Optional[int] = None,
                        seed: int = 0,
                        workdir: Optional[str] = None) -> Dict:
    """Price the sq8 leaf codec against f64 on the serving pipeline.

    Per method, the same query stream runs through
    :meth:`~repro.blobworld.query.BlobworldEngine.am_query_batch` twice
    — over an exact f64-leaf index and over an sq8 quantized-leaf index
    of the same vectors — counting leaf-page reads through a store
    listener.  The quantized tree packs 4-6x more entries per page, so
    it holds fewer leaves and the workload reads fewer of them; the
    full-dimension rerank must erase the quantization: ``parity_ok``
    records whether every returned image list matches the f64 run, and
    callers (CLI, CI) exit 1 on a mismatch.

    A :class:`~repro.gist.planner.QueryPlanner` section exercises
    cost-based routing over the sq8 tree: a single-query batch (the
    default serving mix) must price below a flat scan and route to the
    tree, while the whole stream as one miss batch must route to the
    scan — both decisions, their page estimates, and the scan-routed
    batch's post-rerank parity are recorded.
    """
    from repro.ams.flatfile import FlatFile
    from repro.amdb.profiler import ServeProfile
    from repro.blobworld import BlobworldEngine, build_corpus
    from repro.gist.planner import QueryPlanner

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)
    rng = np.random.default_rng(seed + 2)
    stream = [int(b) for b in rng.integers(0, num_blobs,
                                           size=num_queries)]

    results: List[Dict] = []
    planner_doc: Optional[Dict] = None
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp
        for method in methods:
            row, tree_sq8 = _quantized_bench_method(
                method, corpus, vectors, stream,
                num_candidates=num_candidates, dims=dims,
                page_size=page_size, block_size=block_size, base=base,
                engine_cls=BlobworldEngine, profile_cls=ServeProfile)
            if planner_doc is None:
                planner_doc = _quantized_planner_section(
                    BlobworldEngine(corpus), tree_sq8,
                    FlatFile(vectors, page_size=page_size), stream,
                    num_candidates, dims, block_size,
                    QueryPlanner, ServeProfile)
                row["planner"] = planner_doc
            tree_sq8.store.close()
            results.append(row)

    out = {
        "bench": "quantized",
        "config": {
            "num_blobs": num_blobs,
            "num_queries": num_queries,
            "num_candidates": num_candidates,
            "dims": dims,
            "page_size": page_size,
            "block_size": block_size,
            "seed": seed,
        },
        "methods": results,
        "planner": planner_doc,
        "parity_ok": all(r["parity_ok"] for r in results)
        and bool(planner_doc and planner_doc["parity_ok"]),
        "min_capacity_ratio": min(r["capacity_ratio"] for r in results),
        "min_leaf_read_reduction": min(r["leaf_read_reduction"]
                                       for r in results),
    }
    return out


def _count_reads(store, counts: Dict[str, int]):
    """A store listener folding page reads into ``counts`` by level."""
    def listener(page_id: int, level: int) -> None:
        counts["leaf" if level == 0 else "inner"] += 1
    return listener


def _quantized_bench_method(method: str, corpus, vectors: np.ndarray,
                            stream: List[int], num_candidates: int,
                            dims: int, page_size: int,
                            block_size: Optional[int], base: str,
                            engine_cls, profile_cls):
    ext = make_extension(method, vectors.shape[1])
    engine = engine_cls(corpus)
    row: Dict = {"method": method}
    trees = {}
    for codec in ("f64", "sq8"):
        store = FilePageFile.for_extension(
            os.path.join(base, f"quant_{method}_{codec}.pages"), ext,
            page_size=page_size, leaf_codec=codec)
        trees[codec] = bulk_load(ext, vectors, page_size=page_size,
                                 store=store)

    images = {}
    for codec in ("f64", "sq8"):
        tree = trees[codec]
        counts = {"leaf": 0, "inner": 0}
        listener = _count_reads(tree.store, counts)
        tree.store.add_listener(listener)
        profile = profile_cls(tree_name=method, store_mode=codec,
                              queries=len(stream))
        t0 = time.perf_counter()
        try:
            images[codec] = engine.am_query_batch(
                tree, stream, num_candidates, dims,
                block_size=block_size, profile=profile)
        finally:
            tree.store.remove_listener(listener)
        profile.total_seconds = time.perf_counter() - t0
        by_level = tree.nodes_by_level()
        row[codec] = {
            "leaf_capacity": tree.leaf_capacity,
            "num_leaves": by_level.get(0, 0),
            "num_pages": sum(by_level.values()),
            "leaf_reads": counts["leaf"],
            "inner_reads": counts["inner"],
            "serve_seconds": round(profile.total_seconds, 4),
            "serve_qps": round(len(stream) / profile.total_seconds, 2),
            "profile": profile.as_dict(),
        }

    row["capacity_ratio"] = round(
        row["sq8"]["leaf_capacity"] / row["f64"]["leaf_capacity"], 2)
    row["leaf_read_reduction"] = round(
        row["f64"]["leaf_reads"] / max(1, row["sq8"]["leaf_reads"]), 2)
    row["latency_ratio"] = round(
        row["sq8"]["serve_seconds"] / row["f64"]["serve_seconds"], 3)
    row["parity_ok"] = images["sq8"] == images["f64"]
    trees["f64"].store.close()
    return row, trees["sq8"]


def _quantized_planner_section(engine, tree, flat, stream: List[int],
                               num_candidates: int, dims: int,
                               block_size: Optional[int],
                               planner_cls, profile_cls) -> Dict:
    """Exercise cost-based routing over the sq8 tree, both ways."""
    planner = planner_cls(tree, flat)
    profile = profile_cls(tree_name=tree.ext.name, store_mode="planned",
                          queries=len(stream) + 1)
    # Default serving mix: misses arrive a few at a time, and a short
    # descent beats rescanning the corpus.
    tree_routed = engine.am_query_batch(
        tree, stream[:1], num_candidates, dims,
        block_size=block_size, profile=profile, planner=planner)
    # High selectivity: the whole stream misses at once, and one
    # sequential pass undercuts thousands of random descents.
    scan_routed = engine.am_query_batch(
        tree, stream, num_candidates, dims,
        block_size=block_size, profile=profile, planner=planner)
    reference = engine.am_query_batch(
        tree, stream, num_candidates, dims, block_size=block_size)
    return {
        "plan_single": planner.plan_batch(1, num_candidates).as_dict(),
        "plan_bulk": planner.plan_batch(len(stream),
                                        num_candidates).as_dict(),
        "profile": profile.as_dict(),
        "chose_tree_on_single": profile.plans_tree >= 1,
        "chose_scan_on_bulk": profile.plans_scan >= 1,
        "parity_ok": scan_routed == reference
        and tree_routed == reference[:1],
    }


def format_quantized_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_quantized_bench`
    result."""
    cfg = result["config"]
    lines = [
        f"{cfg['num_queries']} queries x {cfg['num_candidates']} "
        f"candidates over {cfg['num_blobs']} blobs ({cfg['dims']}D), "
        f"page size {cfg['page_size']}: f64 vs sq8 leaf pages",
        f"{'method':<8} {'cap f64':>8} {'cap sq8':>8} {'leaves':>13} "
        f"{'leaf reads':>17} {'reduction':>10} {'lat ratio':>10} "
        f"{'parity':>7}",
    ]
    for row in result["methods"]:
        f64, sq8 = row["f64"], row["sq8"]
        lines.append(
            f"{row['method']:<8} {f64['leaf_capacity']:>8} "
            f"{sq8['leaf_capacity']:>8} "
            f"{f64['num_leaves']:>6}/{sq8['num_leaves']:<6} "
            f"{f64['leaf_reads']:>8}/{sq8['leaf_reads']:<8} "
            f"{row['leaf_read_reduction']:>9.2f}x "
            f"{row['latency_ratio']:>10.3f} "
            f"{'ok' if row['parity_ok'] else 'FAIL':>7}")
    planner = result.get("planner")
    if planner:
        single, bulk = planner["plan_single"], planner["plan_bulk"]
        lines.append(
            f"planner: single-query batch -> {single['choice']} "
            f"({single['est_tree_ms']:.0f} ms tree vs "
            f"{single['est_scan_ms']:.0f} ms scan); "
            f"{bulk['num_queries']}-query batch -> {bulk['choice']} "
            f"({bulk['est_tree_ms']:.0f} ms tree vs "
            f"{bulk['est_scan_ms']:.0f} ms scan); parity "
            f"{'ok' if planner['parity_ok'] else 'FAIL'}")
    return "\n".join(lines)


# -- index-build benchmark ---------------------------------------------------

def run_build_bench(num_blobs: int = 100_000,
                    methods: Sequence[str] = ("rtree", "amap", "xjb"),
                    dims: int = INDEX_DIMENSIONS,
                    page_size: int = DEFAULT_PAGE_SIZE,
                    workers: int = 4, seed: int = 0,
                    workdir: Optional[str] = None) -> Dict:
    """Time the bulk-load pipeline against the legacy sequential loader.

    Four builds per method over one synthetic corpus: the *legacy*
    loader (the pre-pipeline code path — per-node writes with scalar
    checksums, per-entry Python loops, and the scalar reference kernels
    for aMAP bipartitions and JB/XJB carving), the new pipeline at
    ``workers=1``, the new pipeline at ``workers`` under its normal
    scheduling policy (which clamps forked workers to the usable CPUs),
    and a *forced* build that oversubscribes to the full requested
    worker count so the fork-and-merge machinery runs even on machines
    with fewer cores than ``workers``.  Both the normal and the forced
    parallel build must be byte-identical to the sequential page file;
    like :func:`run_bench`, a violation is recorded (``identity_ok``)
    rather than raised so callers can fail after writing the evidence.

    ``speedup`` is new-pipeline-at-``workers`` over legacy — the
    end-to-end gain a caller of :func:`~repro.bulk.bulk_load` sees.
    """
    from repro.amdb.profiler import BuildProfile
    from repro.blobworld import build_corpus

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)

    results: List[Dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp
        for method in methods:
            paths = {tag: os.path.join(base, f"build_{method}_{tag}.pages")
                     for tag in ("legacy", "seq", "par", "forced")}
            row: Dict = {"method": method}

            ext = _legacy_extension(method, dims)
            store = FilePageFile.for_extension(paths["legacy"], ext,
                                               page_size=page_size)
            t0 = time.perf_counter()
            _legacy_build(ext, vectors, page_size, store)
            store.flush()
            row["legacy_seconds"] = round(time.perf_counter() - t0, 4)
            store.close()

            profiles = {}
            for tag, nworkers, force in (("seq", 1, False),
                                         ("par", workers, False),
                                         ("forced", workers, True)):
                ext = make_extension(method, dims)
                store = FilePageFile.for_extension(paths[tag], ext,
                                                   page_size=page_size)
                prof = BuildProfile()
                t0 = time.perf_counter()
                tree = bulk_load(ext, vectors, page_size=page_size,
                                 store=store, workers=nworkers,
                                 oversubscribe=force, profile=prof)
                store.flush()
                row[f"{tag}_seconds"] = round(time.perf_counter() - t0, 4)
                profiles[tag] = prof
                store.close()
            row["nodes"] = profiles["par"].total_nodes
            row["height"] = len(profiles["par"].nodes_by_level)
            row["fork_workers"] = profiles["forced"].fork_workers
            row["identical"] = (_files_equal(paths["seq"], paths["par"])
                                and _files_equal(paths["seq"],
                                                 paths["forced"]))
            row["speedup"] = round(
                row["legacy_seconds"] / row["par_seconds"], 2)
            row["speedup_seq"] = round(
                row["legacy_seconds"] / row["seq_seconds"], 2)
            row["profile"] = profiles["par"].as_dict()
            row["forced_profile"] = profiles["forced"].as_dict()
            results.append(row)
            for path in paths.values():
                if workdir is None and os.path.exists(path):
                    os.unlink(path)

    return {
        "bench": "build",
        "config": {
            "num_blobs": num_blobs,
            "dims": dims,
            "page_size": page_size,
            "workers": workers,
            "seed": seed,
        },
        "methods": results,
        "identity_ok": all(r["identical"] for r in results),
        "min_speedup": min(r["speedup"] for r in results),
    }


def _legacy_extension(method: str, dims: int):
    """The extension configured as the pre-pipeline loader used it:
    scalar reference kernels for the randomized/carved constructions."""
    if method in ("jb", "xjb"):
        return make_extension(method, dims, bite_method="sweep-scalar")
    if method == "amap":
        return make_extension(method, dims, bp_kernel="reduce")
    return make_extension(method, dims)


def _legacy_build(ext, keys: np.ndarray, page_size: int, store) -> None:
    """The seed bulk loader, preserved verbatim as the bench baseline:
    per-entry list comprehensions, one predicate and one page write per
    node, per-predicate routing-point stacking."""
    from repro.bulk.str_pack import chunk_sizes, str_order
    from repro.gist.entry import IndexEntry, LeafEntry
    from repro.gist.node import Node
    from repro.gist.tree import GiST

    tree = GiST(ext, store=store, page_size=page_size)
    store.counting = False
    rids = list(range(len(keys)))

    leaf_target = max(tree.min_entries(0), tree.leaf_capacity)
    order = str_order(keys, leaf_target)
    entries = []
    pos = 0
    for size in chunk_sizes(len(keys), leaf_target, tree.min_entries(0),
                            tree.leaf_capacity):
        chunk = order[pos:pos + size]
        pos += size
        node = Node(store.allocate(), 0,
                    [LeafEntry(keys[i], rids[i]) for i in chunk])
        store.write(node)
        entries.append(IndexEntry(ext.pred_for_keys(keys[chunk]),
                                  node.page_id))

    level = 1
    index_target = max(tree.min_entries(1), tree.index_capacity)
    while len(entries) > 1:
        centers = np.stack([ext.routing_point(e.pred) for e in entries])
        order = str_order(centers, index_target)
        next_entries = []
        pos = 0
        for size in chunk_sizes(len(entries), index_target,
                                tree.min_entries(level),
                                tree.index_capacity):
            chunk = order[pos:pos + size]
            pos += size
            node = Node(store.allocate(), level,
                        [entries[i] for i in chunk])
            store.write(node)
            next_entries.append(IndexEntry(
                ext.pred_for_preds([entries[i].pred for i in chunk]),
                node.page_id))
        entries = next_entries
        level += 1

    root = store.peek(entries[0].child)
    tree.adopt(root, height=root.level + 1, size=len(keys))


def _files_equal(path_a: str, path_b: str) -> bool:
    if os.path.getsize(path_a) != os.path.getsize(path_b):
        return False
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        while True:
            a = fa.read(1 << 20)
            b = fb.read(1 << 20)
            if a != b:
                return False
            if not a:
                return True


def format_build_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_build_bench` result."""
    cfg = result["config"]
    lines = [
        f"bulk load of {cfg['num_blobs']} blobs ({cfg['dims']}D), page "
        f"size {cfg['page_size']}, workers {cfg['workers']}",
        f"{'method':<8} {'nodes':>7} {'legacy s':>9} {'seq s':>8} "
        f"{'par s':>8} {'forced s':>9} {'speedup':>8} {'identical':>10}",
    ]
    for row in result["methods"]:
        lines.append(
            f"{row['method']:<8} {row['nodes']:>7} "
            f"{row['legacy_seconds']:>9.2f} {row['seq_seconds']:>8.2f} "
            f"{row['par_seconds']:>8.2f} {row['forced_seconds']:>9.2f} "
            f"{row['speedup']:>7.2f}x "
            f"{'ok' if row['identical'] else 'FAIL':>10}")
        phases = row["profile"]["phase_seconds"]
        lines.append("    phases: " + ", ".join(
            f"{name} {seconds:.2f}s" for name, seconds in phases.items()))
    return "\n".join(lines)


def _trivial_clustering(n: int, leaf_capacity: int) -> Clustering:
    """Contiguous-rid blocks: a valid (not optimal) clustering so the
    loss stage is cheap and identical for both engines under test."""
    cap = max(1, int(TARGET_UTILIZATION * leaf_capacity))
    return Clustering(assignment={rid: rid // cap for rid in range(n)},
                      block_capacity=cap,
                      num_blocks=max(1, -(-n // cap)))


def format_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_bench` result."""
    cfg = result["config"]
    lines = [
        f"{cfg['num_queries']} queries x k={cfg['k']} over "
        f"{cfg['num_blobs']} blobs ({cfg['dims']}D), page size "
        f"{cfg['page_size']}, workers {cfg['workers']}",
        f"{'method':<8} {'seq s':>8} {'seq q/s':>9} {'batch s':>8} "
        f"{'batch q/s':>10} {'speedup':>8} {'parity':>7}",
    ]
    for row in result["methods"]:
        if "batch_seconds" in row:
            lines.append(
                f"{row['method']:<8} {row['seq_seconds']:>8.2f} "
                f"{row['seq_qps']:>9.1f} {row['batch_seconds']:>8.2f} "
                f"{row['batch_qps']:>10.1f} {row['speedup']:>7.2f}x "
                f"{'ok' if row['parity_ok'] else 'FAIL':>7}")
        else:
            lines.append(
                f"{row['method']:<8} {row['seq_seconds']:>8.2f} "
                f"{row['seq_qps']:>9.1f} {'-':>8} {'-':>10} "
                f"{'-':>8} {'-':>7}")
        for problem in row.get("mismatches", []):
            lines.append(f"    {problem}")
    return "\n".join(lines)
