"""Sequential-vs-batched workload throughput benchmark.

One callable (:func:`run_bench`) behind both ``python -m repro bench``
and the CI perf-smoke job: build disk-backed indexes over a synthetic
corpus, run the same k-NN workload through the sequential runner and
through :func:`~repro.workload.runner.run_workload_batched`, verify the
two agree bit for bit (results, tie order, per-query access lists), and
report throughput.

The trees are deliberately file-backed (:class:`~repro.storage.diskfile.
FilePageFile`): with real page images every sequential access pays a
decode, which is exactly the cost the batched engine amortizes to once
per query block — the setting the paper's I/O economics assume.  The
amdb loss stage runs with a precomputed trivial clustering so both
engines pay the same small analysis constant and the hypergraph
partitioner stays out of a *throughput* measurement.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.amdb.partition import Clustering
from repro.bulk import bulk_load
from repro.constants import (DEFAULT_PAGE_SIZE, INDEX_DIMENSIONS,
                             NEIGHBORS_PER_QUERY, TARGET_UTILIZATION)
from repro.core.api import make_extension
from repro.storage.diskfile import FilePageFile
from repro.workload.generator import make_workload
from repro.workload.runner import run_workload, run_workload_batched


def run_bench(num_blobs: int = 20_000, num_queries: int = 2_000,
              k: int = NEIGHBORS_PER_QUERY,
              methods: Sequence[str] = ("rtree", "xjb"),
              dims: int = INDEX_DIMENSIONS,
              page_size: int = DEFAULT_PAGE_SIZE,
              batch: bool = True, workers: int = 1,
              block_size: Optional[int] = None,
              seed: int = 0, workdir: Optional[str] = None) -> Dict:
    """Time sequential vs batched execution of one synthetic workload.

    Returns a JSON-ready dict: the configuration, and per method the
    wall-clock seconds, queries per second, speedup, I/O totals, and the
    parity verdict.  ``batch=False`` times only the sequential baseline.
    A parity failure does not raise — it is recorded (``parity_ok``)
    so callers (CLI, CI) can fail loudly *after* writing the evidence.
    """
    from repro.blobworld import build_corpus

    corpus = build_corpus(num_blobs=num_blobs,
                          num_images=max(1, num_blobs // 6), seed=seed)
    vectors = corpus.reduced(dims)
    workload = make_workload(vectors, num_queries, k=k, seed=seed + 1)

    results: List[Dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir if workdir is not None else tmp
        for method in methods:
            results.append(_bench_method(
                method, vectors, workload, page_size=page_size,
                batch=batch, workers=workers, block_size=block_size,
                path=os.path.join(base, f"bench_{method}.pages")))

    out = {
        "bench": "batch_knn",
        "config": {
            "num_blobs": num_blobs,
            "num_queries": num_queries,
            "k": k,
            "dims": dims,
            "page_size": page_size,
            "workers": workers,
            "block_size": block_size,
            "seed": seed,
        },
        "methods": results,
    }
    if batch:
        out["parity_ok"] = all(r["parity_ok"] for r in results)
        out["min_speedup"] = min(r["speedup"] for r in results)
    return out


def _bench_method(method: str, vectors: np.ndarray, workload,
                  page_size: int, batch: bool, workers: int,
                  block_size: Optional[int], path: str) -> Dict:
    ext = make_extension(method, vectors.shape[1])
    store = FilePageFile.for_extension(path, ext, page_size=page_size)
    tree = bulk_load(ext, vectors, page_size=page_size, store=store)
    clustering = _trivial_clustering(len(vectors), tree.leaf_capacity)

    t0 = time.perf_counter()
    seq = run_workload(tree, workload, vectors, clustering=clustering)
    seq_seconds = time.perf_counter() - t0

    row = {
        "method": method,
        "seq_seconds": round(seq_seconds, 4),
        "seq_qps": round(workload.num_queries / seq_seconds, 2),
        "leaf_ios": seq.profile.total_leaf_ios,
        "inner_ios": seq.profile.total_inner_ios,
    }
    if not batch:
        return row

    t0 = time.perf_counter()
    bat = run_workload_batched(tree, workload, vectors,
                               clustering=clustering, workers=workers,
                               block_size=block_size)
    bat_seconds = time.perf_counter() - t0

    mismatches = profile_mismatches(seq.profile, bat.profile)
    row.update({
        "batch_seconds": round(bat_seconds, 4),
        "batch_qps": round(workload.num_queries / bat_seconds, 2),
        "speedup": round(seq_seconds / bat_seconds, 2),
        "parity_ok": not mismatches,
        "mismatches": mismatches,
    })
    return row


def profile_mismatches(seq_profile, bat_profile,
                       limit: int = 5) -> List[str]:
    """Differences between two profiles of the same workload.

    Empty = bit-identical: same results (distances, rids, tie order)
    and same per-query leaf/inner access lists in the same order.
    """
    problems: List[str] = []
    if seq_profile.num_queries != bat_profile.num_queries:
        return [f"trace counts differ: {seq_profile.num_queries} "
                f"vs {bat_profile.num_queries}"]
    for ts, tb in zip(seq_profile.traces, bat_profile.traces):
        if ts.results != tb.results:
            problems.append(f"query {ts.qid}: results differ")
        elif ts.leaf_accesses != tb.leaf_accesses:
            problems.append(f"query {ts.qid}: leaf accesses differ")
        elif ts.inner_accesses != tb.inner_accesses:
            problems.append(f"query {ts.qid}: inner accesses differ")
        if len(problems) >= limit:
            problems.append("...")
            break
    return problems


def _trivial_clustering(n: int, leaf_capacity: int) -> Clustering:
    """Contiguous-rid blocks: a valid (not optimal) clustering so the
    loss stage is cheap and identical for both engines under test."""
    cap = max(1, int(TARGET_UTILIZATION * leaf_capacity))
    return Clustering(assignment={rid: rid // cap for rid in range(n)},
                      block_capacity=cap,
                      num_blocks=max(1, -(-n // cap)))


def format_bench(result: Dict) -> str:
    """A fixed-width console table of one :func:`run_bench` result."""
    cfg = result["config"]
    lines = [
        f"{cfg['num_queries']} queries x k={cfg['k']} over "
        f"{cfg['num_blobs']} blobs ({cfg['dims']}D), page size "
        f"{cfg['page_size']}, workers {cfg['workers']}",
        f"{'method':<8} {'seq s':>8} {'seq q/s':>9} {'batch s':>8} "
        f"{'batch q/s':>10} {'speedup':>8} {'parity':>7}",
    ]
    for row in result["methods"]:
        if "batch_seconds" in row:
            lines.append(
                f"{row['method']:<8} {row['seq_seconds']:>8.2f} "
                f"{row['seq_qps']:>9.1f} {row['batch_seconds']:>8.2f} "
                f"{row['batch_qps']:>10.1f} {row['speedup']:>7.2f}x "
                f"{'ok' if row['parity_ok'] else 'FAIL':>7}")
        else:
            lines.append(
                f"{row['method']:<8} {row['seq_seconds']:>8.2f} "
                f"{row['seq_qps']:>9.1f} {'-':>8} {'-':>10} "
                f"{'-':>8} {'-':>7}")
        for problem in row.get("mismatches", []):
            lines.append(f"    {problem}")
    return "\n".join(lines)
