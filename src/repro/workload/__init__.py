"""Workload generation, execution, and recall evaluation (section 3).

The paper uses an artificial workload of nearest-neighbor queries whose
foci are randomly chosen blobs — broad enough that amdb's optimal
clustering is well-founded ("every blob in the data set should, on
average, be retrieved by several queries").
"""

from repro.workload.generator import NNWorkload, make_workload
from repro.workload.runner import (run_workload, run_workload_batched,
                                   WorkloadResult)
from repro.workload.bench import (format_bench, format_serve_bench,
                                  format_shard_bench, run_bench,
                                  run_serve_bench, run_shard_bench)
from repro.workload.recall import recall, recall_curve, RecallPoint

__all__ = [
    "NNWorkload",
    "make_workload",
    "run_workload",
    "run_workload_batched",
    "run_bench",
    "format_bench",
    "run_serve_bench",
    "format_serve_bench",
    "run_shard_bench",
    "format_shard_bench",
    "WorkloadResult",
    "recall",
    "recall_curve",
    "RecallPoint",
]
