"""Workload execution: profile a workload against a tree and summarize.

With ``quarantine=True``, storage corruption encountered mid-run no
longer aborts the workload: corrupt subtrees are pruned, the run
completes, and the result carries a
:class:`~repro.gist.degrade.DegradationReport` with the quarantined
pages and the *measured* degraded recall against brute force.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.amdb.metrics import LossReport, compute_losses
from repro.amdb.partition import Clustering
from repro.amdb.profiler import (WorkloadProfile, _tree_facts,
                                 profile_workload, profile_workload_batched,
                                 trace_queries_batched)
from repro.constants import TARGET_UTILIZATION
from repro.gist.degrade import DegradationReport
from repro.storage.fork import (fork_available, reopen_files, shard_bounds,
                                store_chain)
from repro.workload.generator import NNWorkload


@dataclass
class WorkloadResult:
    """Everything one workload run produces."""

    profile: WorkloadProfile
    report: LossReport
    #: present only for quarantined runs (None = strict mode).
    degradation: Optional[DegradationReport] = None

    @property
    def leaf_ios_per_query(self) -> float:
        return self.report.leaf_ios_per_query

    @property
    def total_ios_per_query(self) -> float:
        return self.report.total_ios / max(self.report.num_queries, 1)

    @property
    def pages_touched_fraction(self) -> float:
        """Distinct pages hit / total tree pages (paper footnote 8)."""
        touched = len(self.profile.pages_touched())
        return touched / max(self.profile.total_pages, 1)

    @property
    def is_degraded(self) -> bool:
        return self.degradation is not None and self.degradation.is_degraded


def run_workload(tree, workload: NNWorkload, vectors: np.ndarray,
                 clustering: Optional[Clustering] = None,
                 target_utilization: float = TARGET_UTILIZATION,
                 quarantine: bool = False) -> WorkloadResult:
    """Profile ``workload`` on ``tree`` and compute the amdb losses.

    ``quarantine=True`` enables degraded-mode execution: the run
    finishes even if pages are corrupt, reporting what was pruned and
    the recall actually achieved.
    """
    degradation = tree.enable_quarantine() if quarantine else None
    profile = profile_workload(tree, workload.queries, workload.k)
    report = compute_losses(
        profile, keys=vectors, rids=list(range(len(vectors))),
        clustering=clustering, target_utilization=target_utilization)
    if degradation is not None:
        degradation.recall = _measured_recall(profile, workload.k, vectors)
    return WorkloadResult(profile=profile, report=report,
                          degradation=degradation)


def run_workload_batched(tree, workload: NNWorkload, vectors: np.ndarray,
                         clustering: Optional[Clustering] = None,
                         target_utilization: float = TARGET_UTILIZATION,
                         quarantine: bool = False,
                         workers: int = 1,
                         block_size: Optional[int] = None) -> WorkloadResult:
    """:func:`run_workload` through the batched query engine.

    The profile is bit-identical to the sequential runner's — same
    results, same per-query access lists in the same order — because
    :func:`~repro.gist.batch.knn_search_batch` reproduces the sequential
    search exactly; only the execution cost changes (each page decoded
    once per query block instead of once per visiting query).

    ``workers > 1`` forks that many processes, each running the batched
    engine over one contiguous shard of the queries, and merges
    deterministically: traces come back in query order regardless of
    which worker finished first, page-file counters absorb each worker's
    deltas, and quarantined pages are unioned into the parent tree and
    report.  Requires the ``fork`` start method (the tree is inherited,
    not pickled); where it is unavailable the run degrades to in-process
    execution with identical output.
    """
    degradation = tree.enable_quarantine() if quarantine else None
    n = len(workload.queries)
    if workers > 1 and n > 1 and _fork_available():
        traces = _trace_parallel(tree, workload, min(workers, n), block_size)
        profile = WorkloadProfile(tree_name=tree.ext.name, k=workload.k,
                                  traces=traces, **_tree_facts(tree))
    else:
        profile = profile_workload_batched(tree, workload.queries,
                                           workload.k, block_size=block_size)
    report = compute_losses(
        profile, keys=vectors, rids=list(range(len(vectors))),
        clustering=clustering, target_utilization=target_utilization)
    if degradation is not None:
        degradation.recall = _measured_recall(profile, workload.k, vectors)
    return WorkloadResult(profile=profile, report=report,
                          degradation=degradation)


#: kept as module attributes so tests can monkeypatch / import them.
_fork_available = fork_available
_shard_bounds = shard_bounds
_store_chain = store_chain
_reopen_files = reopen_files

#: state the forked workers inherit (fork shares it copy-on-write; a
#: Pool argument would have to pickle the tree, which page files can't).
_FORK_STATE: Dict = {}


def _trace_parallel(tree, workload: NNWorkload, workers: int,
                    block_size: Optional[int]) -> List:
    """Per-query traces via one forked worker per contiguous shard."""
    global _FORK_STATE
    bounds = _shard_bounds(len(workload.queries), workers)
    # Workers reopen file-backed stores by path (see _reopen_files), so
    # anything sitting in the parent's write buffer must hit the OS
    # first or the children would read a stale file.
    tree.store.flush()
    _FORK_STATE = {"tree": tree, "queries": workload.queries,
                   "k": workload.k, "block_size": block_size}
    ctx = multiprocessing.get_context("fork")
    try:
        with ctx.Pool(processes=len(bounds)) as pool:
            outcomes = pool.map(_worker_shard, bounds)
    finally:
        _FORK_STATE = {}

    # Deterministic merge: pool.map returns outcomes in shard order (=
    # query order) no matter which worker finished first.
    traces: List = []
    stats_objects = _chain_stats(tree.store)
    for shard_traces, stats_deltas, quarantined in outcomes:
        traces.extend(shard_traces)
        for stats, delta in zip(stats_objects, stats_deltas):
            _stats_apply(stats, delta)
        for page in quarantined:
            tree._quarantined.add(page.page_id)
            if tree.degradation is not None:
                tree.degradation.pages.setdefault(page.page_id, page)
    return traces


def _worker_shard(bounds: Tuple[int, int]):
    """Forked worker body: trace one contiguous query shard.

    Returns everything the parent needs to merge: the shard's traces
    (globally numbered), per-layer counter deltas, and pages the shard
    quarantined — the parent's copies of all three are untouched by the
    child's copy-on-write memory.
    """
    start, stop = bounds
    tree = _FORK_STATE["tree"]
    _reopen_files(tree.store)
    before = [_stats_snapshot(s) for s in _chain_stats(tree.store)]
    seen_quarantined = set(tree.degradation.pages) \
        if tree.degradation is not None else set()
    traces = trace_queries_batched(
        tree, _FORK_STATE["queries"][start:stop], _FORK_STATE["k"],
        block_size=_FORK_STATE["block_size"], qid0=start)
    deltas = [_stats_delta(_stats_snapshot(s), b)
              for s, b in zip(_chain_stats(tree.store), before)]
    quarantined = [p for pid, p in sorted(tree.degradation.pages.items())
                   if pid not in seen_quarantined] \
        if tree.degradation is not None else []
    return traces, deltas, quarantined


def _chain_stats(store) -> List:
    """Distinct stats objects down the store chain, outermost first.

    Deduplicated by identity: a wrapper whose ``stats`` property just
    exposes its inner store's object contributes nothing new.
    """
    objs, seen = [], set()
    for layer in _store_chain(store):
        stats = getattr(layer, "stats", None)
        if stats is not None and id(stats) not in seen:
            seen.add(id(stats))
            objs.append(stats)
    return objs


def _stats_snapshot(stats) -> Dict:
    """The counter fields of a stats dataclass as plain values."""
    out = {}
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        out[f.name] = dict(value) if isinstance(value, dict) else value
    return out


def _stats_delta(after: Dict, before: Dict) -> Dict:
    delta: Dict = {}
    for name, value in after.items():
        if isinstance(value, dict):
            prev = before.get(name, {})
            inc = {key: count - prev.get(key, 0)
                   for key, count in value.items()
                   if count - prev.get(key, 0)}
            delta[name] = inc
        else:
            delta[name] = value - before.get(name, 0)
    return delta


def _stats_apply(stats, delta: Dict) -> None:
    for name, value in delta.items():
        current = getattr(stats, name)
        if isinstance(value, dict):
            for key, count in value.items():
                current[key] = current.get(key, 0) + count
        else:
            setattr(stats, name, current + value)


def _measured_recall(profile: WorkloadProfile, k: int,
                     vectors: np.ndarray) -> float:
    """Fraction of the true k nearest neighbors each query returned.

    Brute force against ``vectors``; ties at the k-th distance count a
    returned rid as correct, so an undamaged run scores 1.0.
    """
    hits = total = 0
    k_eff = min(k, len(vectors))
    if k_eff == 0:
        return 1.0
    for trace in profile.traces:
        d = ((vectors - trace.query) ** 2).sum(axis=1)
        kth = np.partition(d, k_eff - 1)[k_eff - 1]
        got = np.fromiter((rid for rid in trace.result_rids), dtype=np.int64,
                          count=len(trace.result_rids))
        hits += int((d[got] <= kth + 1e-12).sum()) if len(got) else 0
        total += k_eff
    return hits / max(total, 1)
