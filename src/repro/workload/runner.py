"""Workload execution: profile a workload against a tree and summarize.

With ``quarantine=True``, storage corruption encountered mid-run no
longer aborts the workload: corrupt subtrees are pruned, the run
completes, and the result carries a
:class:`~repro.gist.degrade.DegradationReport` with the quarantined
pages and the *measured* degraded recall against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.amdb.metrics import LossReport, compute_losses
from repro.amdb.partition import Clustering
from repro.amdb.profiler import WorkloadProfile, profile_workload
from repro.constants import TARGET_UTILIZATION
from repro.gist.degrade import DegradationReport
from repro.workload.generator import NNWorkload


@dataclass
class WorkloadResult:
    """Everything one workload run produces."""

    profile: WorkloadProfile
    report: LossReport
    #: present only for quarantined runs (None = strict mode).
    degradation: Optional[DegradationReport] = None

    @property
    def leaf_ios_per_query(self) -> float:
        return self.report.leaf_ios_per_query

    @property
    def total_ios_per_query(self) -> float:
        return self.report.total_ios / max(self.report.num_queries, 1)

    @property
    def pages_touched_fraction(self) -> float:
        """Distinct pages hit / total tree pages (paper footnote 8)."""
        touched = len(self.profile.pages_touched())
        return touched / max(self.profile.total_pages, 1)

    @property
    def is_degraded(self) -> bool:
        return self.degradation is not None and self.degradation.is_degraded


def run_workload(tree, workload: NNWorkload, vectors: np.ndarray,
                 clustering: Optional[Clustering] = None,
                 target_utilization: float = TARGET_UTILIZATION,
                 quarantine: bool = False) -> WorkloadResult:
    """Profile ``workload`` on ``tree`` and compute the amdb losses.

    ``quarantine=True`` enables degraded-mode execution: the run
    finishes even if pages are corrupt, reporting what was pruned and
    the recall actually achieved.
    """
    degradation = tree.enable_quarantine() if quarantine else None
    profile = profile_workload(tree, workload.queries, workload.k)
    report = compute_losses(
        profile, keys=vectors, rids=list(range(len(vectors))),
        clustering=clustering, target_utilization=target_utilization)
    if degradation is not None:
        degradation.recall = _measured_recall(profile, workload.k, vectors)
    return WorkloadResult(profile=profile, report=report,
                          degradation=degradation)


def _measured_recall(profile: WorkloadProfile, k: int,
                     vectors: np.ndarray) -> float:
    """Fraction of the true k nearest neighbors each query returned.

    Brute force against ``vectors``; ties at the k-th distance count a
    returned rid as correct, so an undamaged run scores 1.0.
    """
    hits = total = 0
    k_eff = min(k, len(vectors))
    if k_eff == 0:
        return 1.0
    for trace in profile.traces:
        d = ((vectors - trace.query) ** 2).sum(axis=1)
        kth = np.partition(d, k_eff - 1)[k_eff - 1]
        got = np.fromiter((rid for rid in trace.result_rids), dtype=np.int64,
                          count=len(trace.result_rids))
        hits += int((d[got] <= kth + 1e-12).sum()) if len(got) else 0
        total += k_eff
    return hits / max(total, 1)
