"""Workload execution: profile a workload against a tree and summarize."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.amdb.metrics import LossReport, compute_losses
from repro.amdb.partition import Clustering
from repro.amdb.profiler import WorkloadProfile, profile_workload
from repro.constants import TARGET_UTILIZATION
from repro.workload.generator import NNWorkload


@dataclass
class WorkloadResult:
    """Everything one workload run produces."""

    profile: WorkloadProfile
    report: LossReport

    @property
    def leaf_ios_per_query(self) -> float:
        return self.report.leaf_ios_per_query

    @property
    def total_ios_per_query(self) -> float:
        return self.report.total_ios / max(self.report.num_queries, 1)

    @property
    def pages_touched_fraction(self) -> float:
        """Distinct pages hit / total tree pages (paper footnote 8)."""
        touched = len(self.profile.pages_touched())
        return touched / max(self.profile.total_pages, 1)


def run_workload(tree, workload: NNWorkload, vectors: np.ndarray,
                 clustering: Optional[Clustering] = None,
                 target_utilization: float = TARGET_UTILIZATION
                 ) -> WorkloadResult:
    """Profile ``workload`` on ``tree`` and compute the amdb losses."""
    profile = profile_workload(tree, workload.queries, workload.k)
    report = compute_losses(
        profile, keys=vectors, rids=list(range(len(vectors))),
        clustering=clustering, target_utilization=target_utilization)
    return WorkloadResult(profile=profile, report=report)
