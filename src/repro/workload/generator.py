"""Nearest-neighbor query workload generation (paper section 3.1).

The paper randomly selects ~5,531 of the 221,231 blobs as query foci so
that, on average, every blob is retrieved by several queries — the
coverage premise of the amdb analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NEIGHBORS_PER_QUERY


@dataclass
class NNWorkload:
    """A set of k-NN queries over one reduced vector corpus."""

    queries: np.ndarray        # (q, dims) query points
    focus_rids: np.ndarray     # (q,) blob indices the queries came from
    k: int

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def expected_retrievals_per_item(self, num_items: int) -> float:
        """Average times each item is retrieved — should be >= a few
        for the optimal-clustering baseline to be meaningful."""
        return self.num_queries * self.k / max(num_items, 1)


def make_workload(vectors: np.ndarray, num_queries: int,
                  k: int = NEIGHBORS_PER_QUERY,
                  seed: int = 0) -> NNWorkload:
    """Random data points become query foci, as in the paper."""
    vectors = np.asarray(vectors, dtype=np.float64)
    rng = np.random.default_rng(seed)
    num_queries = min(num_queries, len(vectors))
    foci = rng.choice(len(vectors), size=num_queries, replace=False)
    return NNWorkload(queries=vectors[foci], focus_rids=foci, k=k)


def make_welcome_workload(vectors: np.ndarray, num_queries: int,
                          num_foci: int = 8,
                          k: int = NEIGHBORS_PER_QUERY,
                          seed: int = 0,
                          jitter: float = 0.02) -> NNWorkload:
    """The workload the paper *rejected* (section 3.1).

    Real recorded Blobworld queries were "typically based on one of the
    eight sample images" of the welcome page — a few foci queried over
    and over.  This generator reproduces that bias: ``num_foci`` base
    blobs, each query a small perturbation of one of them.  Such a
    workload leaves most of the data set untouched, undermining the
    optimal-clustering baseline amdb needs — the reason the paper built
    an artificial broad workload instead
    (see ``benchmarks/bench_workload_coverage.py``).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    rng = np.random.default_rng(seed)
    num_foci = min(num_foci, len(vectors))
    base = rng.choice(len(vectors), size=num_foci, replace=False)
    picks = rng.integers(0, num_foci, size=num_queries)
    scale = vectors.std(axis=0) * jitter
    queries = vectors[base[picks]] \
        + rng.normal(size=(num_queries, vectors.shape[1])) * scale
    return NNWorkload(queries=queries, focus_rids=base[picks], k=k)
