"""Synthetic data-set families beyond Blobworld (paper section 8).

The paper's future work asks for "testing aMAP, JB and XJB on other
data sets, and workloads both static and dynamic".  This module
provides standard multidimensional families with controlled geometry —
the knob that (per EXPERIMENTS.md A3) decides whether corner-bite
predicates pay off — plus a dynamic workload generator mixing inserts,
deletes, and k-NN queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np


def uniform(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """I.i.d. uniform over the unit cube — the hardest case for bites."""
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, dim))


def gaussian_clusters(n: int, dim: int, seed: int = 0,
                      num_clusters: int = 30,
                      spread: float = 0.35) -> np.ndarray:
    """Isotropic Gaussian clusters with random centers and scales."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_clusters, dim)) * 4.0
    sizes = rng.multinomial(n, np.full(num_clusters, 1 / num_clusters))
    parts = [c + rng.normal(size=(s, dim)) * spread * rng.uniform(0.5, 2)
             for c, s in zip(centers, sizes) if s > 0]
    out = np.concatenate(parts)
    rng.shuffle(out)
    return out


def diagonal_band(n: int, dim: int, seed: int = 0,
                  thickness: float = 0.02) -> np.ndarray:
    """Points along the main diagonal — maximal empty-corner geometry."""
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.0, 1.0, size=n)
    pts = np.tile(t[:, None], (1, dim))
    return pts + rng.normal(scale=thickness, size=(n, dim))


def curved_manifold(n: int, dim: int, seed: int = 0,
                    intrinsic: int = 2,
                    noise: float = 0.01) -> np.ndarray:
    """A smooth ``intrinsic``-dimensional sheet embedded in ``dim``."""
    if not 1 <= intrinsic < dim:
        raise ValueError("need 1 <= intrinsic < dim")
    rng = np.random.default_rng(seed)
    t = rng.uniform(-2.0, 2.0, size=(n, intrinsic))
    cols = [t[:, i % intrinsic] for i in range(intrinsic)]
    phase = rng.uniform(0, np.pi, size=dim)
    for d in range(intrinsic, dim):
        a, b = t[:, d % intrinsic], t[:, (d + 1) % intrinsic]
        cols.append(np.sin(a * 1.3 + phase[d]) * b * 0.6)
    pts = np.stack(cols, axis=1)
    return pts + rng.normal(scale=noise, size=pts.shape)


def heavy_tailed(n: int, dim: int, seed: int = 0,
                 tail_fraction: float = 0.05) -> np.ndarray:
    """Dense clusters plus a scattered tail of outliers."""
    rng = np.random.default_rng(seed)
    base = gaussian_clusters(n, dim, seed=seed + 1, spread=0.15)
    tail = rng.integers(0, n, size=int(n * tail_fraction))
    base[tail] = rng.normal(size=(len(tail), dim)) * 8.0
    return base


DATASET_FAMILIES: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform,
    "clusters": gaussian_clusters,
    "diagonal": diagonal_band,
    "manifold": curved_manifold,
    "heavy_tailed": heavy_tailed,
}


# ---------------------------------------------------------------------------
# Dynamic workloads
# ---------------------------------------------------------------------------

@dataclass
class DynamicOp:
    """One step of a dynamic workload."""

    kind: str                  # "insert" | "delete" | "query"
    rid: int = -1              # for insert/delete
    query: np.ndarray = None   # for query


@dataclass
class DynamicRunResult:
    """What happened when a dynamic workload ran against a tree."""

    query_leaf_ios: List[int]
    query_results: List[List[Tuple[float, int]]]
    inserts: int
    deletes: int

    @property
    def mean_query_leaf_ios(self) -> float:
        return float(np.mean(self.query_leaf_ios)) \
            if self.query_leaf_ios else 0.0


def make_dynamic_workload(vectors: np.ndarray, num_ops: int, k: int,
                          seed: int = 0,
                          mix=(0.25, 0.15, 0.60)) -> List[DynamicOp]:
    """A random interleaving of inserts, deletes and k-NN queries.

    The tree starts holding the first half of ``vectors``; inserts draw
    from the second half, deletes from whatever is currently live, and
    queries from live data points.  ``mix`` gives the
    (insert, delete, query) proportions.
    """
    rng = np.random.default_rng(seed)
    n = len(vectors)
    live = set(range(n // 2))
    pending = list(range(n // 2, n))
    rng.shuffle(pending)

    ops: List[DynamicOp] = []
    kinds = rng.choice(["insert", "delete", "query"], size=num_ops,
                       p=list(mix))
    for kind in kinds:
        if kind == "insert" and pending:
            ops.append(DynamicOp("insert", rid=pending.pop()))
        elif kind == "delete" and len(live) > k + 1:
            rid = int(rng.choice(sorted(live)))
            live.discard(rid)
            ops.append(DynamicOp("delete", rid=rid))
        else:
            focus = int(rng.choice(sorted(live)))
            ops.append(DynamicOp("query", query=vectors[focus]))
        if ops[-1].kind == "insert":
            live.add(ops[-1].rid)
    return ops


def run_dynamic_workload(tree, vectors: np.ndarray,
                         ops: List[DynamicOp], k: int) -> DynamicRunResult:
    """Execute a dynamic workload; returns per-query leaf I/Os.

    The tree must already contain the first half of ``vectors`` (rids
    ``0 .. n//2-1``), as produced by ``make_dynamic_workload``.
    """
    leaf_ios: List[int] = []
    results = []
    inserts = deletes = 0
    for op in ops:
        if op.kind == "insert":
            tree.insert(vectors[op.rid], op.rid)
            inserts += 1
        elif op.kind == "delete":
            if tree.delete(vectors[op.rid], op.rid):
                deletes += 1
        else:
            before = tree.store.stats.leaf_reads
            results.append(tree.knn(op.query, k))
            leaf_ios.append(tree.store.stats.leaf_reads - before)
    return DynamicRunResult(query_leaf_ios=leaf_ios,
                            query_results=results,
                            inserts=inserts, deletes=deletes)
