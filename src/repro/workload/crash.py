"""Randomized kill-and-recover trials for the WAL mutation stack.

Each trial builds a small index, reopens it as a
:class:`~repro.gist.mutable.MutableTree` with a randomly placed
:class:`~repro.storage.faults.CrashPoint`, and applies a random
insert/delete workload until the injected crash kills the commit
protocol.  A shadow in-memory tree mirrors exactly the *committed*
transactions — an op whose crash fired after the WAL fsync (pre-apply,
mid-apply) is durable and mirrored; one killed mid-append is not.  The
trial then proves the recovery contract:

- replaying the log twice with ``checkpoint=False`` leaves the data
  file byte-identical (redo is idempotent);
- reopening (which recovers) yields a tree whose deep scrub
  (:func:`repro.analysis.deep_scrub`) is clean;
- k-NN results are bit-identical to the shadow tree's, before and
  after a few post-recovery mutations (the file is live, not merely
  readable).

``python -m repro crashtest`` drives this across all six AM families;
the CI crash-recovery job runs ≥200 seeded trials per push.
"""

from __future__ import annotations

import os
import random
import tempfile
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import make_extension
from repro.gist.mutable import MutableTree
from repro.gist.persist import load_tree, save_tree
from repro.gist.tree import GiST
from repro.storage.faults import CrashError, CrashInjector, CrashPoint
from repro.storage.wal import recover

#: the six AM families the acceptance harness must cover.
DEFAULT_METHODS = ("rtree", "sstree", "srtree", "amap", "jb", "xjb")

CRASH_POINTS = ("mid-append", "pre-apply", "mid-apply")


@dataclass
class TrialResult:
    """One kill-and-recover trial's outcome."""

    method: str
    seed: int
    point: str
    after: int
    torn: float
    codec: str = "f64"
    ok: bool = False
    crash_fired: bool = False
    ops_committed: int = 0
    transactions_replayed: int = 0
    torn_bytes: int = 0
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"method": self.method, "seed": self.seed,
                "point": self.point, "after": self.after,
                "torn": self.torn, "codec": self.codec, "ok": self.ok,
                "crash_fired": self.crash_fired,
                "ops_committed": self.ops_committed,
                "transactions_replayed": self.transactions_replayed,
                "torn_bytes": self.torn_bytes, "error": self.error}


@dataclass
class CrashReport:
    """Aggregate over a batch of trials."""

    trials: List[TrialResult] = field(default_factory=list)

    @property
    def failures(self) -> List[TrialResult]:
        return [t for t in self.trials if not t.ok]

    @property
    def crashes_fired(self) -> int:
        return sum(1 for t in self.trials if t.crash_fired)

    @property
    def clean(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {"trials": [t.to_dict() for t in self.trials],
                "total": len(self.trials),
                "crashes_fired": self.crashes_fired,
                "failures": len(self.failures)}

    def format(self) -> str:
        by_method: Dict[str, int] = {}
        for t in self.trials:
            by_method[t.method] = by_method.get(t.method, 0) + 1
        lines = [f"crashtest: {len(self.trials)} trials "
                 f"({self.crashes_fired} crashes fired), "
                 f"{len(self.failures)} failures",
                 "per method   : "
                 + ", ".join(f"{m} {n}" for m, n in sorted(by_method.items()))]
        for t in self.failures:
            lines.append(f"  FAIL {t.method} seed={t.seed} point={t.point} "
                         f"after={t.after}: {t.error.splitlines()[-1]}")
        lines.append(f"verdict      : {'clean' if self.clean else 'FAILED'}")
        return "\n".join(lines)


def _knn_lists(tree: GiST, queries: np.ndarray,
               k: int) -> List[List[Tuple[float, int]]]:
    return [sorted((round(d, 9), rid) for d, rid in tree.knn(q, k))
            for q in queries]


def run_crash_trial(method: str, seed: int, workdir: str,
                    dim: int = 3, page_size: int = 1024,
                    base_points: int = 150, ops: int = 40,
                    codec: str = "f64") -> TrialResult:
    """One randomized kill-and-recover trial; see the module docstring.

    ``codec`` selects the leaf-page format under test.  Quantized
    (lossy) trials keep every durability check — redo idempotence,
    deep scrub, size parity, post-recovery mutability — but skip the
    bit-exact k-NN shadow comparison: the shadow mirrors one decode
    generation of reconstructions while the recovered file re-quantizes
    at every commit, so low digits legitimately drift.  Engine-level
    post-rerank parity for sq8 is gated separately (the quantized
    serving bench and the parity test suite).
    """
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    point = rng.choice(CRASH_POINTS)
    # `after` counts injector check sites (records for mid-append, pages
    # for mid-apply, commits for pre-apply), so a wide range lands
    # crashes anywhere in the run — and sometimes not at all, which
    # doubles as a clean-run trial.  Torn fractions stay below 1.0: a
    # fully written "torn" record would be indistinguishable from a
    # complete one (and genuinely durable).
    after = rng.randrange(0, 3 * ops)
    torn = rng.uniform(0.0, 0.95)
    result = TrialResult(method=method, seed=seed, point=point,
                         after=after, torn=torn, codec=codec)
    path = os.path.join(workdir, f"{method}-{seed}.amdb")
    try:
        _run_trial(result, path, rng, nprng, dim, page_size,
                   base_points, ops)
        result.ok = True
    except Exception:
        result.error = traceback.format_exc()
    finally:
        for p in (path, path + ".wal"):
            if os.path.exists(p):
                os.unlink(p)
    return result


def _run_trial(result: TrialResult, path: str, rng: random.Random,
               nprng: np.random.Generator, dim: int, page_size: int,
               base_points: int, ops: int) -> None:
    from repro.analysis import deep_scrub

    method = result.method
    pts = nprng.uniform(0.0, 100.0, size=(base_points, dim))
    from repro.storage.codecs import make_leaf_codec
    exact = not make_leaf_codec(result.codec, dim).lossy
    base = GiST(make_extension(method, dim), page_size=page_size,
                leaf_codec=make_leaf_codec(result.codec, dim))
    for i, p in enumerate(pts):
        base.insert(p, i)
    save_tree(base, path)

    shadow = load_tree(path=path)
    live: List[Tuple[np.ndarray, int]] = [(pts[i], i)
                                          for i in range(base_points)]
    next_rid = base_points
    injector = CrashInjector(CrashPoint(point=result.point,
                                        after=result.after,
                                        torn=result.torn))
    mt = MutableTree.open(path, injector=injector)
    try:
        for _ in range(ops):
            insert = not live or rng.random() < 0.6
            if insert:
                key = nprng.uniform(0.0, 100.0, size=dim)
                rid = next_rid
                next_rid += 1
            else:
                key, rid = live[rng.randrange(len(live))]
            try:
                if insert:
                    mt.insert(key, rid)
                else:
                    assert mt.delete(key, rid), \
                        f"live pair (rid {rid}) not found"
            except CrashError:
                result.crash_fired = True
                # The WAL fsync is the durability point: a commit that
                # died mid-append never became durable; one that died
                # pre-apply or mid-apply did, and recovery must redo it.
                if result.point != "mid-append":
                    _mirror(shadow, live, insert, key, rid)
                    result.ops_committed += 1
                break
            _mirror(shadow, live, insert, key, rid)
            result.ops_committed += 1
    finally:
        mt.close()

    # Redo is idempotent: replaying the same log twice (no checkpoint)
    # leaves the data file byte-identical.
    recover(path, checkpoint=False)
    with open(path, "rb") as f:
        first = f.read()
    recover(path, checkpoint=False)
    with open(path, "rb") as f:
        second = f.read()
    assert first == second, "recovery is not idempotent"

    mt2 = MutableTree.open(path)
    try:
        result.transactions_replayed = mt2.recovery.transactions_applied
        result.torn_bytes = mt2.recovery.truncated_bytes
        scrub = deep_scrub(path)
        assert scrub.clean, f"deep scrub damaged:\n{scrub.format()}"
        assert mt2.tree.size == shadow.size, \
            f"size {mt2.tree.size} != shadow {shadow.size}"
        queries = nprng.uniform(0.0, 100.0, size=(4, dim))
        k = min(8, max(1, shadow.size))
        # Quantized trees re-encode (re-quantize) at every commit, so
        # the shadow's distances drift in the low digits; the bit-exact
        # comparison is an exact-codec check only (see run_crash_trial).
        if shadow.size and exact:
            assert _knn_lists(mt2.tree, queries, k) == \
                _knn_lists(shadow, queries, k), "k-NN diverges from shadow"
        # The recovered file is live: a few more mutations must commit
        # and stay in parity.
        for _ in range(3):
            key = nprng.uniform(0.0, 100.0, size=dim)
            mt2.insert(key, next_rid)
            shadow.insert(key, next_rid)
            next_rid += 1
        assert mt2.tree.size == shadow.size, \
            "size diverges after post-recovery inserts"
        if shadow.size and exact:
            assert _knn_lists(mt2.tree, queries, k) == \
                _knn_lists(shadow, queries, k), \
                "k-NN diverges after post-recovery inserts"
    finally:
        mt2.close()
    scrub = deep_scrub(path)
    assert scrub.clean, f"final deep scrub damaged:\n{scrub.format()}"


def _mirror(shadow: GiST, live: List[Tuple[np.ndarray, int]],
            insert: bool, key: np.ndarray, rid: int) -> None:
    if insert:
        shadow.insert(key, rid)
        live.append((key, rid))
    else:
        assert shadow.delete(key, rid)
        live[:] = [(k, r) for k, r in live if r != rid]


def run_crash_trials(methods: Sequence[str] = DEFAULT_METHODS,
                     trials: int = 60, seed: int = 0,
                     workdir: Optional[str] = None,
                     **options: Any) -> CrashReport:
    """``trials`` randomized trials round-robined over ``methods``."""
    report = CrashReport()
    own_dir = workdir is None
    if own_dir:
        workdir = tempfile.mkdtemp(prefix="repro-crash-")
    assert workdir is not None
    try:
        for i in range(trials):
            method = methods[i % len(methods)]
            report.trials.append(
                run_crash_trial(method, seed + i, workdir, **options))
    finally:
        if own_dir:
            try:
                os.rmdir(workdir)
            except OSError:
                pass
    return report
