"""Incremental nearest-neighbor cursors (Hjaltason & Samet's ranking).

``knn`` needs k fixed up front, but Blobworld's real contract is
"retrieve the nearest blobs until 200 distinct *images* have been seen"
(paper section 3: queries "retrieve 200 images each").  The incremental
cursor yields neighbors one at a time in exact distance order, so the
consumer decides when to stop; page accesses accrue only as far as the
cursor is advanced.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Tuple

import numpy as np

_NODE = 0
_POINT = 1


def nn_cursor(tree: Any, query: np.ndarray) -> Iterator[Tuple[float, int]]:
    """Yield ``(distance, rid)`` pairs in nondecreasing distance order.

    The traversal state lives in the generator; advancing it performs
    exactly the page reads an equivalently-deep ``knn`` would.  Uses
    the same lazy bite refinement as :mod:`repro.gist.nn`.
    """
    if tree.root_id is None:
        return
    query = np.asarray(query, dtype=np.float64)
    ext = tree.ext
    counter = itertools.count()
    heap = [(0.0, next(counter), _NODE,
             (None, tree.root_id, tree.height - 1), True)]

    while heap:
        dist, _, kind, payload, refined = heapq.heappop(heap)
        if kind == _POINT:
            yield dist, payload
            continue
        pred, page_id, level = payload
        if not refined and ext.has_refinement and pred is not None:
            tight = ext.refine_dist(pred, query, dist)
            if heap and tight > heap[0][0]:
                heapq.heappush(
                    heap, (tight, next(counter), _NODE, payload, True))
                continue
        node = tree._read_query(page_id, level)
        if node is None:
            continue
        if node.is_leaf:
            if not node.entries:
                continue
            keys = node.keys_array()
            dists = np.sqrt(((keys - query) ** 2).sum(axis=1))
            for entry, d in zip(node.entries, dists):
                heapq.heappush(heap, (float(d), next(counter), _POINT,
                                      entry.rid, True))
        else:
            dists = ext.min_dists_node(node, query)
            lazy = ext.has_refinement
            for entry, d in zip(node.entries, dists):
                heapq.heappush(
                    heap, (float(d), next(counter), _NODE,
                           (entry.pred, entry.child, node.level - 1),
                           not lazy))


def knn_until(tree: Any, query: np.ndarray, stop: Any) -> list:
    """Collect neighbors until ``stop(results)`` returns True.

    ``stop`` receives the list of ``(distance, rid)`` results gathered
    so far (called after each new neighbor).  Returns the collected
    list; exhausts the tree if the predicate never fires.
    """
    results = []
    for hit in nn_cursor(tree, query):
        results.append(hit)
        if stop(results):
            break
    return results
