"""Expanding-sphere nearest-neighbor search (paper section 5).

"Nearest neighbor queries [3] work by finding points within a given
distance of the query point, in essence asking expanding sphere
queries."  This module implements that strategy literally — repeated
sphere range queries with a growing radius until k results accumulate —
as an alternative to the best-first search of :mod:`repro.gist.nn`.

Both return the exact k nearest neighbors; they differ in page
accesses: the expanding search re-reads nodes across rounds and
overshoots the final radius, so tight bounding predicates pay off even
more (every round prunes with ``min_dist``).  The estimator seeds the
initial radius from the tree's own geometry to keep rounds few.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

import numpy as np


def sphere_search(tree: Any, center: np.ndarray,
                  radius: float) -> List[Tuple[float, int]]:
    """All stored keys within ``radius`` of ``center``, as (dist, rid).

    Generic over access methods: a subtree can hold matches only if the
    extension's ``min_dist`` lower bound does not exceed the radius.
    """
    if tree.root_id is None:
        return []
    center = np.asarray(center, dtype=np.float64)
    ext = tree.ext
    results: List[Tuple[float, int]] = []
    stack = [(tree.root_id, tree.height - 1)]
    while stack:
        page_id, level = stack.pop()
        node = tree._read_query(page_id, level)
        if node is None:
            continue
        if node.is_leaf:
            if not node.entries:
                continue
            dists = np.sqrt(((node.keys_array() - center) ** 2)
                            .sum(axis=1))
            for entry, d in zip(node.entries, dists):
                if d <= radius:
                    results.append((float(d), entry.rid))
        else:
            dists = ext.min_dists_node(node, center)
            for entry, d in zip(node.entries, dists):
                lower = d
                if ext.has_refinement and lower <= radius:
                    lower = ext.refine_dist(entry.pred, center, lower)
                if lower <= radius:
                    stack.append((entry.child, node.level - 1))
    return results


def _initial_radius(tree: Any, k: int) -> float:
    """Radius guess: scale the root extent by the target selectivity.

    A ball holding ~k of n points in ``d`` dimensions has radius about
    ``extent * (k / n) ** (1/d)``; underestimates only cost one extra
    round.
    """
    root = tree._peek(tree.root_id)
    ext = tree.ext
    if root.is_leaf:
        span = float(np.linalg.norm(
            root.keys_array().max(axis=0) - root.keys_array().min(axis=0)))
    else:
        rects = [ext.footprint(p) if hasattr(ext, "footprint") else None
                 for p in root.preds()]
        if rects[0] is not None:
            lo = np.minimum.reduce([r.lo for r in rects])
            hi = np.maximum.reduce([r.hi for r in rects])
            span = float(np.linalg.norm(hi - lo))
        else:
            centers = np.stack([ext.routing_point(p)
                                for p in root.preds()])
            span = float(np.linalg.norm(centers.max(axis=0)
                                        - centers.min(axis=0)))
    frac = (k / max(tree.size, 1)) ** (1.0 / tree.ext.dim)
    return max(span * frac * 0.5, 1e-9)


def knn_expanding(tree: Any, query: np.ndarray, k: int,
                  initial_radius: Optional[float] = None,
                  growth: float = 2.0,
                  max_rounds: int = 64) -> List[Tuple[float, int]]:
    """Exact k-NN via expanding sphere queries.

    Each round runs a full sphere search from the root; the radius
    doubles until at least ``k`` matches are found, and the final match
    set is truncated to the k nearest.  Page accesses accumulate across
    rounds — this is the point of studying the strategy.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if growth <= 1.0:
        raise ValueError("growth factor must exceed 1")
    if tree.root_id is None:
        return []
    query = np.asarray(query, dtype=np.float64)
    k_eff = min(k, tree.size)

    radius = initial_radius if initial_radius is not None \
        else _initial_radius(tree, k_eff)
    for _ in range(max_rounds):
        matches = sphere_search(tree, query, radius)
        if len(matches) >= k_eff:
            matches.sort()
            return matches[:k]
        radius *= growth
    raise RuntimeError(
        f"expanding search did not find {k_eff} neighbors within "
        f"{max_rounds} rounds (final radius {radius:g})")
