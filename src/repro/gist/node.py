"""Tree nodes: one page each, with lazy per-node computation caches."""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.gist.entry import IndexEntry, LeafEntry


class Node:
    """A tree node occupying exactly one page.

    ``level`` 0 means leaf.  ``entries`` holds :class:`LeafEntry` items at
    the leaf level and :class:`IndexEntry` items above it.  The ``cache``
    dict lets extensions memoize stacked-array views of the entries (for
    vectorized distance computation); any structural mutation must go
    through the mutator methods so the cache is invalidated.
    """

    __slots__ = ("page_id", "level", "_entries", "cache")

    def __init__(self, page_id: int, level: int, entries: Optional[List] = None) -> None:
        self.page_id = page_id
        self.level = level
        self._entries: Optional[List] = \
            list(entries) if entries is not None else []
        self.cache: dict = {}

    @classmethod
    def leaf_from_arrays(cls, page_id: int, keys: np.ndarray,
                         rids: np.ndarray) -> "Node":
        """A leaf backed by stacked arrays, entry objects deferred.

        The bulk loader packs leaves by slicing the level's ordered key
        and rid arrays; building a :class:`~repro.gist.entry.LeafEntry`
        per row would cost more than everything else the loader does to
        the node.  The arrays land directly in the node cache (where
        :meth:`keys_array` / :meth:`rid_array` read them), and
        :attr:`entries` materializes lazily on first access.
        """
        node = cls(page_id, 0)
        node._entries = None
        node.cache["keys"] = keys
        node.cache["rids"] = rids
        return node

    @property
    def entries(self) -> List:
        if self._entries is None:
            self._entries = [LeafEntry(k, int(r)) for k, r
                             in zip(self.keys_array(),
                                    self.cache["rids"])]
        return self._entries

    @entries.setter
    def entries(self, value: List) -> None:
        self._entries = value

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        if self._entries is None:
            return len(self.cache["keys"])
        return len(self._entries)

    # -- mutation (cache-invalidating) --------------------------------------

    def add_entry(self, entry: Any) -> None:
        self.entries.append(entry)
        self.cache.clear()

    def remove_entry_at(self, index: int) -> None:
        del self.entries[index]
        self.cache.clear()

    def set_entries(self, entries: List) -> None:
        self.entries = list(entries)
        self.cache.clear()

    def replace_entry(self, index: int, entry: Any) -> None:
        self.entries[index] = entry
        self.cache.clear()

    # -- cached views -----------------------------------------------------------

    def cached(self, key: str, build: Any) -> Any:
        """Memoize ``build()`` under ``key`` until the node mutates.

        Extensions use this to keep stacked geometry arrays (MBR
        ``lo``/``hi`` matrices, bite packs) alongside the decoded node,
        so repeated distance evaluations — one per query in a batch —
        are matrix operations instead of per-entry Python loops.
        """
        value = self.cache.get(key)
        if value is None:
            value = build()
            self.cache[key] = value
        return value

    def keys_array(self) -> np.ndarray:
        """Stacked ``(n, dim)`` array of leaf keys (leaf nodes only).

        A leaf decoded from a quantized page caches a lazy
        ``QuantizedKeys`` block; the first call here materializes the
        float64 reconstruction (and stashes the quantization half
        widths for :meth:`key_halfwidths`), so pages whose keys are
        never touched never pay for the floats.
        """
        if not self.is_leaf:
            raise ValueError("keys_array is only defined for leaves")
        cached = self.cache.get("keys")
        if cached is None:
            cached = np.stack([e.key for e in self.entries]) \
                if self.entries else np.empty((0, 0))
            self.cache["keys"] = cached
        elif not isinstance(cached, np.ndarray):
            self.cache["qhalf"] = cached.half_widths()
            self.cache["qblock"] = cached
            cached = cached.dequantize()
            self.cache["keys"] = cached
        return cached

    def key_halfwidths(self) -> Optional[np.ndarray]:
        """Per-dimension quantization half widths, or None if exact.

        Non-None only for leaves decoded from a lossy (SQ8) page: every
        originally inserted key lies within these half widths of the
        reconstructed key along each axis, which is what lets the k-NN
        kernels subtract them to form admissible lower bounds.
        """
        if not self.is_leaf:
            raise ValueError("key_halfwidths is only defined for leaves")
        half = self.cache.get("qhalf")
        if half is None:
            cached = self.cache.get("keys")
            if cached is not None and not isinstance(cached, np.ndarray):
                half = cached.half_widths()
                self.cache["qhalf"] = half
        return half

    def quantized_block(self) -> Any:
        """The decoded ``QuantizedKeys`` block, or None if exact."""
        if not self.is_leaf:
            return None
        block = self.cache.get("qblock")
        if block is None:
            cached = self.cache.get("keys")
            if cached is not None and not isinstance(cached, np.ndarray):
                block = cached
        return block

    def rids(self) -> List[int]:
        if not self.is_leaf:
            raise ValueError("rids is only defined for leaves")
        if self._entries is None:
            return [int(r) for r in self.cache["rids"]]
        return [e.rid for e in self.entries]

    def rid_array(self) -> np.ndarray:
        """Stacked ``(n,)`` int64 array of leaf rids (leaf nodes only)."""
        if not self.is_leaf:
            raise ValueError("rid_array is only defined for leaves")
        cached = self.cache.get("rids")
        if cached is None:
            cached = np.fromiter((e.rid for e in self.entries),
                                 dtype=np.int64, count=len(self.entries))
            self.cache["rids"] = cached
        return cached

    def preds(self) -> List:
        if self.is_leaf:
            raise ValueError("preds is only defined for internal nodes")
        return [e.pred for e in self.entries]

    def children(self) -> List[int]:
        if self.is_leaf:
            raise ValueError("children is only defined for internal nodes")
        return [e.child for e in self.entries]

    def find_child_index(self, child: int) -> int:
        for i, e in enumerate(self.entries):
            if e.child == child:
                return i
        raise KeyError(f"child page {child} not in node {self.page_id}")

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"inner(level={self.level})"
        return f"Node(page={self.page_id}, {kind}, entries={len(self.entries)})"
