"""Tree entries: leaf ``(key, RID)`` pairs and index ``(BP, child)`` pairs."""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class LeafEntry(NamedTuple):
    """A stored data item: feature vector ``key`` and its record id."""

    key: np.ndarray
    rid: int


class IndexEntry(NamedTuple):
    """An internal-node entry: bounding predicate and child page id."""

    pred: object
    child: int
