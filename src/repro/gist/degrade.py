"""Degraded-mode bookkeeping: what a quarantined query run gave up.

When a tree runs with quarantine enabled (see
:meth:`repro.gist.tree.GiST.enable_quarantine`), a corrupt page no
longer aborts the query — the subtree it roots is pruned and the loss is
recorded here, so a workload can finish and report *how degraded* its
answers are instead of crashing mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class QuarantinedPage:
    """One pruned subtree root."""

    page_id: int
    #: tree level of the unreadable page (None when unknown).
    level: Optional[int]
    #: stringified cause (the PageCorruptError message).
    error: str
    #: rough count of leaf entries the pruned subtree held, from the
    #: tree's fill model — the page is unreadable, so this cannot be
    #: exact, only an honest order of magnitude.
    estimated_candidates_lost: int


@dataclass
class DegradationReport:
    """Everything a degraded run gave up, and how it scored anyway."""

    pages: Dict[int, QuarantinedPage] = field(default_factory=dict)
    #: measured recall of the degraded run against brute force, filled
    #: in by :func:`repro.workload.runner.run_workload`.
    recall: Optional[float] = None

    def record(self, page_id: int, level: Optional[int], error: Any,
               estimated_candidates_lost: int) -> QuarantinedPage:
        """Register a pruned page (idempotent per page id)."""
        entry = self.pages.get(page_id)
        if entry is None:
            entry = QuarantinedPage(
                page_id=page_id, level=level, error=str(error),
                estimated_candidates_lost=estimated_candidates_lost)
            self.pages[page_id] = entry
        return entry

    @property
    def pages_quarantined(self) -> int:
        return len(self.pages)

    @property
    def estimated_candidates_lost(self) -> int:
        return sum(p.estimated_candidates_lost for p in self.pages.values())

    @property
    def is_degraded(self) -> bool:
        return bool(self.pages)

    def summary(self) -> str:
        if not self.is_degraded:
            return "no pages quarantined"
        lines = [f"{self.pages_quarantined} page(s) quarantined, "
                 f"~{self.estimated_candidates_lost} candidates lost"]
        for page in sorted(self.pages.values(), key=lambda p: p.page_id):
            level = "?" if page.level is None else page.level
            lines.append(f"  page {page.page_id} (level {level}): "
                         f"{page.error}")
        if self.recall is not None:
            lines.append(f"degraded recall: {self.recall:.4f}")
        return "\n".join(lines)
