"""The GiST template algorithms: search, insert, delete, maintenance.

The tree is parameterized by a :class:`~repro.gist.extension.GiSTExtension`
and a page file.  Fanout is *real*: a node overflows when its fixed-size
entries exceed the page payload, so predicate size (Table 3 of the paper)
directly shapes the tree.

Query operations (:meth:`GiST.search`, :meth:`GiST.knn`) read nodes
through the counting path of the page file; maintenance operations
(insert, delete, bulk load) use the non-counting ``peek`` path, so page
statistics reflect query work only — matching how amdb measures
workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE, TARGET_UTILIZATION
from repro.gist.degrade import DegradationReport
from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.extension import GiSTExtension
from repro.gist.node import Node
from repro.gist.nn import knn_search
from repro.storage.codecs import IndexEntryCodec, LeafEntryCodec
from repro.storage.errors import PageCorruptError
from repro.storage.page import entries_per_page, page_payload
from repro.storage.pagefile import MemoryPageFile

#: minimum fill fraction enforced by splits and deletes (Guttman's m).
MIN_FILL = 0.4


class GiST:
    """A height-balanced multi-way search tree specialized by an extension."""

    def __init__(self, extension: GiSTExtension, store: Any = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 leaf_codec: Optional[LeafEntryCodec] = None) -> None:
        self.ext = extension
        self.store = store if store is not None else MemoryPageFile()
        self.page_size = page_size
        if leaf_codec is None:
            # A page-file store already committed to a leaf format
            # (e.g. an SQ8 FilePageFile); the tree must agree with it
            # or capacities and re-encodes would silently diverge.
            store_codec = getattr(
                getattr(self.store, "codec", None), "leaf_codec", None)
            if store_codec is not None and store_codec.dim == extension.dim:
                leaf_codec = store_codec
            else:
                leaf_codec = LeafEntryCodec(extension.dim)
        self.leaf_codec = leaf_codec
        self.index_codec = IndexEntryCodec(extension.pred_codec())
        self.leaf_capacity = self.leaf_codec.capacity(page_size)
        self.index_capacity = entries_per_page(page_size,
                                               self.index_codec.size)
        self.root_id: Optional[int] = None
        #: when True, insert-path predicate maintenance *widens*
        #: ancestors via the extension's adjust hooks instead of
        #: recomputing whole nodes (opt-in; set by the mutable-tree
        #: wrapper).  Default off keeps bulk/insertion loads
        #: bit-identical to the historical behaviour.
        self.incremental_adjust = False
        #: number of levels; 0 for an empty tree, 1 for a lone leaf root.
        self.height = 0
        #: number of stored (key, RID) pairs.
        self.size = 0
        #: when True, corrupt pages are pruned from query results and
        #: recorded in :attr:`degradation` instead of raising.
        self.quarantine_enabled = False
        self.degradation: Optional[DegradationReport] = None
        self._quarantined: set = set()

    # -- capacities ---------------------------------------------------------

    def capacity(self, level: int) -> int:
        return self.leaf_capacity if level == 0 else self.index_capacity

    def min_entries(self, level: int) -> int:
        return max(1, int(MIN_FILL * self.capacity(level)))

    # -- node access ----------------------------------------------------------

    def _read(self, page_id: int) -> Node:
        """Counted read — query work."""
        return self.store.read(page_id)

    def _peek(self, page_id: int) -> Node:
        """Uncounted read — maintenance work."""
        return self.store.peek(page_id)

    # -- degraded mode -------------------------------------------------------

    def enable_quarantine(
            self, report: Optional[DegradationReport] = None
            ) -> DegradationReport:
        """Switch query paths to degraded mode.

        A :class:`~repro.storage.errors.PageCorruptError` during search
        then prunes the corrupt subtree (its candidates are lost, the
        query completes) and records it in the returned
        :class:`DegradationReport` instead of propagating.
        """
        self.quarantine_enabled = True
        self.degradation = report if report is not None \
            else DegradationReport()
        return self.degradation

    def disable_quarantine(self) -> None:
        self.quarantine_enabled = False

    def _read_query(self, page_id: int,
                    level: Optional[int] = None) -> Optional[Node]:
        """Counted read for query paths; None when quarantined.

        ``level`` is the level the caller expects the page at (known
        from the parent), used only to estimate what was lost.
        """
        if self.quarantine_enabled and page_id in self._quarantined:
            return None
        try:
            return self._read(page_id)
        except PageCorruptError as exc:
            if not self.quarantine_enabled:
                raise
            self._quarantine(page_id, level, exc)
            return None

    def _read_query_many(
            self, requests: Sequence[Tuple[int, Optional[int]]]
            ) -> Dict[int, Optional[Node]]:
        """Bulk :meth:`_read_query`: ``{page_id: node-or-None}``.

        ``requests`` pairs each page id with its expected level.  In
        quarantine mode every page goes through the scalar path, so
        corrupt pages are pruned and recorded in the
        :class:`DegradationReport` exactly as a sequential run would;
        in strict mode the whole set is gathered with one
        ``store.read_many`` call (contiguous slot runs, batched CRC),
        which raises on the first failing page in request order just
        like the equivalent read loop.
        """
        requests = list(requests)
        if self.quarantine_enabled:
            return {pid: self._read_query(pid, level)
                    for pid, level in requests}
        read_many = getattr(self.store, "read_many", None)
        if read_many is None or len(requests) < 2:
            return {pid: self._read(pid) for pid, _ in requests}
        pids = [pid for pid, _ in requests]
        return dict(zip(pids, read_many(pids)))

    def _quarantine(self, page_id: int, level: Optional[int], exc: Any) -> None:
        self._quarantined.add(page_id)
        self.degradation.record(page_id, level, exc,
                                self._estimate_candidates(level))

    def _estimate_candidates(self, level: Optional[int]) -> int:
        """Leaf entries a subtree rooted at ``level`` roughly held.

        The page is unreadable, so this uses the tree's fill model:
        target utilization times capacity, compounded per level.
        """
        leaf_fill = max(1, round(TARGET_UTILIZATION * self.leaf_capacity))
        if level is None or level <= 0:
            return leaf_fill
        inner_fill = max(2, round(TARGET_UTILIZATION * self.index_capacity))
        return leaf_fill * inner_fill ** level

    def _new_node(self, level: int, entries: Any = None) -> Node:
        node = Node(self.store.allocate(), level, entries)
        self.store.write(node)
        return node

    # -- queries ------------------------------------------------------------------

    def search(self, query_rect: np.ndarray) -> List[LeafEntry]:
        """All leaf entries whose keys fall inside ``query_rect``."""
        if self.root_id is None:
            return []
        results: List[LeafEntry] = []
        stack = [(self.root_id, self.height - 1)]
        while stack:
            page_id, level = stack.pop()
            node = self._read_query(page_id, level)
            if node is None:
                continue
            if node.is_leaf:
                if node.entries:
                    inside = query_rect.contains_points(node.keys_array())
                    results.extend(e for e, ok in zip(node.entries, inside)
                                   if ok)
            else:
                for entry in node.entries:
                    if self.ext.consistent(entry.pred, query_rect):
                        stack.append((entry.child, node.level - 1))
        return results

    def knn(self, query: np.ndarray, k: int) -> List[Tuple[float, int]]:
        """The ``k`` nearest stored keys to ``query`` as (distance, rid).

        Best-first (Hjaltason–Samet) search; exact for every conservative
        extension.  Ties at the k-th distance are broken arbitrarily.
        """
        return knn_search(self, query, k)

    def knn_batch(self, queries: np.ndarray, k: int,
                  block_size: Optional[int] = None,
                  ) -> List[List[Tuple[float, int]]]:
        """:meth:`knn` for a whole ``(Q, dim)`` query block at once.

        Shares one traversal frontier across the block — each node is
        fetched and decoded at most once — while returning results (and
        counting page accesses) bit-identically to per-query
        :meth:`knn` calls; see :func:`repro.gist.batch.knn_search_batch`.
        """
        from repro.gist.batch import knn_search_batch
        return knn_search_batch(self, queries, k, block_size=block_size)

    def nn_cursor(self, query: np.ndarray) -> Any:
        """Incremental nearest-neighbor iterator; see
        :func:`repro.gist.cursor.nn_cursor`."""
        from repro.gist.cursor import nn_cursor
        return nn_cursor(self, query)

    def sphere_search(self, center: np.ndarray, radius: float) -> List[Tuple[float, int]]:
        """All keys within ``radius`` of ``center`` as (distance, rid)."""
        from repro.gist.expanding import sphere_search
        return sphere_search(self, center, radius)

    def knn_expanding(self, query: np.ndarray, k: int, **options: Any
                      ) -> List[Tuple[float, int]]:
        """Exact k-NN via the paper's expanding-sphere strategy
        (section 5); see :func:`repro.gist.expanding.knn_expanding`."""
        from repro.gist.expanding import knn_expanding
        return knn_expanding(self, query, k, **options)

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: np.ndarray, rid: int) -> None:
        """Add a ``(key, RID)`` pair (GiST INSERT template)."""
        key = np.asarray(key, dtype=np.float64)
        self._insert_entry(LeafEntry(key, rid), target_level=0,
                           routing_key=key)
        self.size += 1

    def _insert_entry(self, entry: Any, target_level: int,
                      routing_key: np.ndarray) -> None:
        """Insert ``entry`` into a node at ``target_level``.

        ``target_level`` 0 inserts a leaf entry; higher levels re-attach
        orphaned subtrees during delete condensation.
        """
        if self.root_id is None:
            if target_level != 0:
                raise ValueError("cannot graft a subtree into an empty tree")
            root = self._new_node(0, [entry])
            self.root_id = root.page_id
            self.height = 1
            return

        path = self._choose_path(routing_key, target_level)
        node = path[-1][0] if path else self._peek(self.root_id)
        node.add_entry(entry)
        # An overflowing node never reaches the store: the split writes
        # both halves (page images cannot hold an oversize node).
        if len(node) > self.capacity(node.level):
            self._split(node, path[:-1] if path else [])
        elif target_level > 0:
            # Grafting an orphaned subtree (delete condensation): the
            # ancestors must cover the subtree's whole predicate, not
            # just its routing point.
            self.store.write(node)
            self._adjust_upward(path, routing_key=None,
                                changed_preds=[entry.pred])
        else:
            self.store.write(node)
            self._adjust_upward(path, routing_key)

    def _choose_path(self, key: np.ndarray,
                     target_level: int) -> List[Tuple[Node, int]]:
        """Penalty-guided descent to a node at ``target_level``.

        Returns ``[(node, child_index), ..., (target_node, -1)]``; the
        final element carries -1 since the target has no chosen child.
        """
        path: List[Tuple[Node, int]] = []
        node = self._peek(self.root_id)
        while node.level > target_level:
            best = int(np.argmin(self.ext.penalties_node(node, key)))
            path.append((node, best))
            node = self._peek(node.entries[best].child)
        path.append((node, -1))
        return path

    def _split(self, node: Node, ancestors: List[Tuple[Node, int]]) -> None:
        level = node.level
        left_entries, right_entries = self.ext.pick_split(
            list(node.entries), level, self.min_entries(level))
        if not left_entries or not right_entries:
            raise RuntimeError(
                f"{self.ext.name} pick_split produced an empty side")
        node.set_entries(left_entries)
        sibling = self._new_node(level, right_entries)
        self.store.write(node)

        left_pred = self.ext.pred_for_node(node)
        right_pred = self.ext.pred_for_node(sibling)

        if not ancestors:
            # Node was the root: grow the tree by one level.
            root = self._new_node(level + 1, [
                IndexEntry(left_pred, node.page_id),
                IndexEntry(right_pred, sibling.page_id),
            ])
            self.root_id = root.page_id
            self.height += 1
            return

        parent, _ = ancestors[-1]
        idx = parent.find_child_index(node.page_id)
        parent.replace_entry(idx, IndexEntry(left_pred, node.page_id))
        parent.add_entry(IndexEntry(right_pred, sibling.page_id))
        if len(parent) > self.capacity(parent.level):
            self._split(parent, ancestors[:-1])
        elif self.incremental_adjust:
            # The parent's entries already hold both halves' exact
            # predicates; ancestors only need widening over the two
            # changed child predicates, no recompute.
            self.store.write(parent)
            self._adjust_upward(ancestors[:-1], routing_key=None,
                                changed_preds=[left_pred, right_pred])
        else:
            self.store.write(parent)
            self._adjust_upward(ancestors, routing_key=None)

    def _adjust_upward(self, path: List[Tuple[Node, int]],
                       routing_key: Optional[np.ndarray],
                       changed_preds: Optional[List] = None) -> None:
        """Restore bounding predicates bottom-up along an insert path.

        Stops early once an existing predicate already covers what
        changed below it and nothing beneath was rewritten — ancestors
        then cover it too, by the tree's containment invariant.

        ``changed_preds`` seeds the first adjusted level with the exact
        predicates newly installed below it (a grafted subtree's
        predicate, or both halves of a split): the predicate must cover
        those, not merely the routing point.

        With :attr:`incremental_adjust` set, the extension's
        ``adjust_pred_*`` hooks *widen* predicates instead of
        recomputing whole nodes; a hook returning the identical
        predicate object means "already covered", which ends the
        climb.
        """
        child_changed = False
        child_pred = None
        changed = list(changed_preds) if changed_preds else None
        for node, child_idx in reversed(path):
            if child_idx < 0:
                continue
            entry = node.entries[child_idx]
            if not child_changed:
                if changed is not None:
                    if all(self.ext.covers_pred(entry.pred, cp)
                           for cp in changed):
                        return
                elif (routing_key is not None
                        and self.ext.contains(entry.pred, routing_key)):
                    return
            new_pred = None
            if self.incremental_adjust:
                if child_changed:
                    new_pred = self.ext.adjust_pred_cover(entry.pred,
                                                          child_pred)
                elif changed is not None:
                    new_pred = entry.pred
                    for cp in changed:
                        new_pred = self.ext.adjust_pred_cover(new_pred, cp)
                        if new_pred is None:
                            break
                elif routing_key is not None:
                    new_pred = self.ext.adjust_pred_insert(entry.pred,
                                                           routing_key)
                if new_pred is entry.pred:
                    # Already covers what changed below; by containment,
                    # every ancestor does too.
                    return
            if new_pred is None:
                child = self._peek(entry.child)
                new_pred = self.ext.pred_for_node(child)
            node.replace_entry(child_idx, IndexEntry(new_pred, entry.child))
            self.store.write(node)
            child_changed = True
            child_pred = new_pred
            changed = None

    # -- deletion ----------------------------------------------------------------------

    def delete(self, key: np.ndarray, rid: int) -> bool:
        """Remove one ``(key, RID)`` pair; returns whether it was found.

        On a lossy (quantized) leaf codec the stored key is a
        reconstruction, so a caller holding the originally inserted
        floats cannot match it exactly — and for non-rectangular
        families the reconstruction may even sit outside the predicate
        that routed the original.  RIDs are unique tree-wide, so when
        the predicate-guided descent comes up empty a lossy tree falls
        back to locating the leaf by RID alone.
        """
        if self.root_id is None:
            return False
        key = np.asarray(key, dtype=np.float64)
        path = self._find_leaf(self.root_id, key, rid, [])
        lossy = self.leaf_codec.lossy
        if path is None and lossy:
            path = self._find_leaf_by_rid(self.root_id, rid, [])
        if path is None:
            return False
        leaf = path[-1]
        for i, entry in enumerate(leaf.entries):
            if entry.rid == rid and (lossy
                                     or np.array_equal(entry.key, key)):
                leaf.remove_entry_at(i)
                break
        self.store.write(leaf)
        self.size -= 1
        self._condense(path)
        return True

    def _find_leaf(self, page_id: int, key: np.ndarray, rid: int,
                   trail: List[Node]) -> Optional[List[Node]]:
        node = self._peek(page_id)
        trail = trail + [node]
        if node.is_leaf:
            for entry in node.entries:
                if entry.rid == rid and np.array_equal(entry.key, key):
                    return trail
            return None
        for entry in node.entries:
            if self.ext.contains(entry.pred, key):
                found = self._find_leaf(entry.child, key, rid, trail)
                if found is not None:
                    return found
        return None

    def _find_leaf_by_rid(self, page_id: int, rid: int,
                          trail: List[Node]) -> Optional[List[Node]]:
        """Exhaustive descent to the leaf holding ``rid`` (lossy trees)."""
        node = self._peek(page_id)
        trail = trail + [node]
        if node.is_leaf:
            if any(e.rid == rid for e in node.entries):
                return trail
            return None
        for entry in node.entries:
            found = self._find_leaf_by_rid(entry.child, rid, trail)
            if found is not None:
                return found
        return None

    def _condense(self, path: List[Node]) -> None:
        """R-tree style CondenseTree: dissolve underfull nodes, reinsert."""
        orphans: List[Tuple[int, object]] = []   # (level, entry)
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            idx = parent.find_child_index(node.page_id)
            if len(node) < self.min_entries(node.level):
                parent.remove_entry_at(idx)
                self.store.write(parent)
                orphans.extend((node.level, e) for e in node.entries)
                self.store.free(node.page_id)
            else:
                new_pred = self.ext.pred_for_node(node)
                parent.replace_entry(idx, IndexEntry(new_pred, node.page_id))
                self.store.write(parent)

        self._shrink_root()
        # Reinsert highest-level orphans first so the tree regains height
        # before lower orphans are routed through it.
        for level, entry in sorted(orphans, key=lambda le: -le[0]):
            if level == 0:
                self._insert_entry(entry, 0, entry.key)
                continue
            # The entry belongs in a node at `level`; if root shrinkage
            # left the tree shorter than that, flatten the orphan subtree
            # by one level and retry.
            pending = [(level, entry)]
            while pending:
                lvl, e = pending.pop()
                if lvl == 0:
                    self._insert_entry(e, 0, e.key)
                    continue
                root = self._peek(self.root_id) if self.root_id else None
                if root is None or root.level < lvl:
                    child = self._peek(e.child)
                    pending.extend((lvl - 1, ce) for ce in child.entries)
                    self.store.free(child.page_id)
                    continue
                routing = self.ext.routing_point(e.pred)
                self._insert_entry(e, lvl, routing)

    def _shrink_root(self) -> None:
        if self.root_id is None:
            return
        root = self._peek(self.root_id)
        while not root.is_leaf and len(root) == 1:
            child = root.entries[0].child
            self.store.free(root.page_id)
            self.root_id = child
            self.height -= 1
            root = self._peek(self.root_id)
        if root.is_leaf and not root.entries and self.size == 0:
            self.store.free(root.page_id)
            self.root_id = None
            self.height = 0

    # -- bulk-load hook -------------------------------------------------------------

    def adopt(self, root: Node, height: int, size: int) -> None:
        """Take ownership of a bulk-built subtree (see repro.bulk.loader)."""
        self.root_id = root.page_id
        self.height = height
        self.size = size

    # -- introspection -----------------------------------------------------------------

    def iter_nodes(self, level: Optional[int] = None) -> Iterator[Node]:
        """Yield all nodes (uncounted), optionally only one level.

        In quarantine mode, corrupt pages are recorded and skipped so
        post-run analysis can still walk the readable remainder.
        """
        if self.root_id is None:
            return
        stack = [(self.root_id, self.height - 1)]
        while stack:
            page_id, lvl = stack.pop()
            if self.quarantine_enabled and page_id in self._quarantined:
                continue
            try:
                node = self._peek(page_id)
            except PageCorruptError as exc:
                if not self.quarantine_enabled:
                    raise
                self._quarantine(page_id, lvl, exc)
                continue
            if level is None or node.level == level:
                yield node
            if not node.is_leaf:
                stack.extend((c, node.level - 1) for c in node.children())

    def leaf_nodes(self) -> Iterator[Node]:
        return self.iter_nodes(level=0)

    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def nodes_by_level(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for node in self.iter_nodes():
            counts[node.level] = counts.get(node.level, 0) + 1
        return counts

    def node_utilization(self, node: Node) -> float:
        """Fraction of the page payload used by a node's entries."""
        if node.is_leaf:
            return (self.leaf_codec.body_bytes(len(node))
                    / page_payload(self.page_size))
        return len(node) * self.index_codec.size / page_payload(self.page_size)

    def parent_map(self) -> Dict[int, int]:
        """child page id -> parent page id for the whole tree."""
        parents: Dict[int, int] = {}
        for node in self.iter_nodes():
            if not node.is_leaf:
                for entry in node.entries:
                    parents[entry.child] = node.page_id
        return parents

    def root_fanout(self) -> int:
        if self.root_id is None:
            return 0
        return len(self._peek(self.root_id))

    def __repr__(self) -> str:
        return (f"GiST({self.ext.name}, height={self.height}, "
                f"size={self.size}, nodes={self.num_nodes() if self.root_id else 0})")
