"""A Generalized Search Tree (GiST) framework [Hellerstein et al. 95].

The GiST generalizes height-balanced multi-way search trees: leaves hold
``(key, RID)`` pairs, internal nodes hold ``(bounding predicate, child)``
pairs, and the tree's behaviour is specialized by an *extension* — the
set of methods (``consistent``, ``union``, ``penalty``, ``pick_split``,
distance functions, codecs) an access-method designer supplies.

This package provides the template algorithms (search, best-first
nearest-neighbor search, insert with node splitting, delete with
condensation, bulk-load hooks), byte-budgeted nodes backed by the paged
storage substrate, and structural validation.  Concrete access methods
live in :mod:`repro.ams` (traditional) and :mod:`repro.core` (the paper's
custom designs).
"""

from repro.gist.batch import knn_search_batch
from repro.gist.degrade import DegradationReport, QuarantinedPage
from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.node import Node
from repro.gist.extension import GiSTExtension
from repro.gist.planner import Plan, PlannerConfig, QueryPlanner
from repro.gist.tree import GiST
from repro.gist.validate import ScrubReport, scrub_file, validate_tree

__all__ = [
    "IndexEntry",
    "LeafEntry",
    "Node",
    "GiSTExtension",
    "GiST",
    "knn_search_batch",
    "validate_tree",
    "scrub_file",
    "ScrubReport",
    "DegradationReport",
    "QuarantinedPage",
    "Plan",
    "PlannerConfig",
    "QueryPlanner",
]
