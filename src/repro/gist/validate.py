"""Structural validation for GiST trees.

These checks encode the invariants section 2.1 of the paper states for
any GiST: height balance, bounding predicates that hold for everything
beneath them, leaves partitioning the stored RIDs, and page-budget
compliance.  Tests call :func:`validate_tree` after every build and
mutation sequence.
"""

from __future__ import annotations

from typing import List

import numpy as np


class TreeInvariantError(AssertionError):
    """A structural invariant was violated."""


def validate_tree(tree, expected_size: int = None,
                  check_fill: bool = True) -> None:
    """Raise :class:`TreeInvariantError` on any broken invariant."""
    if tree.root_id is None:
        if tree.height != 0 or tree.size != 0:
            raise TreeInvariantError("empty tree with nonzero height/size")
        if expected_size not in (None, 0):
            raise TreeInvariantError(f"expected {expected_size} items, tree empty")
        return

    ext = tree.ext
    seen_rids: List[int] = []
    leaf_depths = set()

    def recurse(page_id: int, depth: int, expected_level) -> None:
        node = tree._peek(page_id)
        if expected_level is not None and node.level != expected_level:
            raise TreeInvariantError(
                f"node {page_id} at level {node.level}, expected {expected_level}")
        if len(node) > tree.capacity(node.level):
            raise TreeInvariantError(
                f"node {page_id} overflows: {len(node)} > "
                f"{tree.capacity(node.level)}")
        is_root = page_id == tree.root_id
        if check_fill and not is_root and len(node) < tree.min_entries(node.level):
            raise TreeInvariantError(
                f"node {page_id} underfull: {len(node)} < "
                f"{tree.min_entries(node.level)}")
        if node.is_leaf:
            leaf_depths.add(depth)
            seen_rids.extend(e.rid for e in node.entries)
            return
        if not node.entries:
            raise TreeInvariantError(f"inner node {page_id} is empty")
        for entry in node.entries:
            child = tree._peek(entry.child)
            _check_bp(ext, entry.pred, child, entry.child)
            recurse(entry.child, depth + 1, node.level - 1)

    root = tree._peek(tree.root_id)
    if root.level != tree.height - 1:
        raise TreeInvariantError(
            f"root level {root.level} inconsistent with height {tree.height}")
    recurse(tree.root_id, 0, root.level)

    if len(leaf_depths) > 1:
        raise TreeInvariantError(f"unbalanced tree: leaf depths {leaf_depths}")
    if len(seen_rids) != len(set(seen_rids)):
        raise TreeInvariantError("duplicate RIDs across leaves")
    if len(seen_rids) != tree.size:
        raise TreeInvariantError(
            f"tree.size {tree.size} != stored entries {len(seen_rids)}")
    if expected_size is not None and len(seen_rids) != expected_size:
        raise TreeInvariantError(
            f"expected {expected_size} items, found {len(seen_rids)}")


def _check_bp(ext, pred, child, child_id: int) -> None:
    """A bounding predicate must hold for everything beneath it."""
    if child.is_leaf:
        for entry in child.entries:
            if not ext.contains(pred, entry.key):
                raise TreeInvariantError(
                    f"BP of child {child_id} excludes stored key "
                    f"{entry.key.tolist()}")
    else:
        for entry in child.entries:
            if not ext.covers_pred(pred, entry.pred):
                raise TreeInvariantError(
                    f"BP of child {child_id} fails to cover a grandchild BP")
