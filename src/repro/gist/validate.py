"""Structural validation for GiST trees, and on-disk index scrubbing.

These checks encode the invariants section 2.1 of the paper states for
any GiST: height balance, bounding predicates that hold for everything
beneath them, leaves partitioning the stored RIDs, and page-budget
compliance.  Tests call :func:`validate_tree` after every build and
mutation sequence.

:func:`scrub_file` is the fsck counterpart for *saved* indexes: it walks
a file written by :func:`repro.gist.persist.save_tree` page by page,
verifying the superblock and every slot's checksum, and classifies each
slot as ok / corrupt / free / orphaned without ever loading the tree.
Wired into the CLI as ``python -m repro fsck <index>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np


class TreeInvariantError(AssertionError):
    """A structural invariant was violated."""


def validate_tree(tree: Any, expected_size: Optional[int] = None,
                  check_fill: bool = True) -> None:
    """Raise :class:`TreeInvariantError` on any broken invariant."""
    if tree.root_id is None:
        if tree.height != 0 or tree.size != 0:
            raise TreeInvariantError("empty tree with nonzero height/size")
        if expected_size not in (None, 0):
            raise TreeInvariantError(f"expected {expected_size} items, tree empty")
        return

    ext = tree.ext
    seen_rids: List[int] = []
    leaf_depths = set()

    def recurse(page_id: int, depth: int, expected_level: Any) -> None:
        node = tree._peek(page_id)
        if expected_level is not None and node.level != expected_level:
            raise TreeInvariantError(
                f"node {page_id} at level {node.level}, expected {expected_level}")
        if len(node) > tree.capacity(node.level):
            raise TreeInvariantError(
                f"node {page_id} overflows: {len(node)} > "
                f"{tree.capacity(node.level)}")
        is_root = page_id == tree.root_id
        if check_fill and not is_root and len(node) < tree.min_entries(node.level):
            raise TreeInvariantError(
                f"node {page_id} underfull: {len(node)} < "
                f"{tree.min_entries(node.level)}")
        if node.is_leaf:
            leaf_depths.add(depth)
            seen_rids.extend(e.rid for e in node.entries)
            return
        if not node.entries:
            raise TreeInvariantError(f"inner node {page_id} is empty")
        for entry in node.entries:
            child = tree._peek(entry.child)
            _check_bp(ext, entry.pred, child, entry.child)
            recurse(entry.child, depth + 1, node.level - 1)

    root = tree._peek(tree.root_id)
    if root.level != tree.height - 1:
        raise TreeInvariantError(
            f"root level {root.level} inconsistent with height {tree.height}")
    recurse(tree.root_id, 0, root.level)

    if len(leaf_depths) > 1:
        raise TreeInvariantError(f"unbalanced tree: leaf depths {leaf_depths}")
    if len(seen_rids) != len(set(seen_rids)):
        raise TreeInvariantError("duplicate RIDs across leaves")
    if len(seen_rids) != tree.size:
        raise TreeInvariantError(
            f"tree.size {tree.size} != stored entries {len(seen_rids)}")
    if expected_size is not None and len(seen_rids) != expected_size:
        raise TreeInvariantError(
            f"expected {expected_size} items, found {len(seen_rids)}")


@dataclass
class SlotReport:
    """Verdict for one page slot of a saved index file."""

    slot: int
    #: "ok" | "corrupt" | "free" | "orphaned"
    status: str
    level: Optional[int] = None
    entries: Optional[int] = None
    detail: str = ""


@dataclass
class ScrubReport:
    """What an fsck pass over a saved index found."""

    path: str
    page_size: int = 0
    num_slots: int = 0
    superblock_ok: bool = False
    detail: str = ""
    slots: List[SlotReport] = field(default_factory=list)

    def _with_status(self, status: str) -> List[SlotReport]:
        return [s for s in self.slots if s.status == status]

    @property
    def ok_slots(self) -> List[SlotReport]:
        return self._with_status("ok")

    @property
    def corrupt_slots(self) -> List[SlotReport]:
        return self._with_status("corrupt")

    @property
    def free_slots(self) -> List[SlotReport]:
        return self._with_status("free")

    @property
    def orphaned_slots(self) -> List[SlotReport]:
        return self._with_status("orphaned")

    @property
    def clean(self) -> bool:
        """No corruption, no orphans, superblock verified."""
        return (self.superblock_ok and not self.corrupt_slots
                and not self.orphaned_slots)

    def format(self) -> str:
        lines = [f"fsck {self.path}"]
        if not self.superblock_ok:
            lines.append(f"superblock   : CORRUPT — {self.detail}")
            return "\n".join(lines)
        lines.append(f"superblock   : ok ({self.page_size}-byte pages, "
                     f"{self.num_slots} slots)")
        counts = {status: len(self._with_status(status))
                  for status in ("ok", "corrupt", "free", "orphaned")}
        lines.append("slots        : "
                     + ", ".join(f"{n} {s}" for s, n in counts.items()))
        for slot in self.corrupt_slots:
            lines.append(f"  slot {slot.slot}: CORRUPT — {slot.detail}")
        for slot in self.orphaned_slots:
            lines.append(f"  slot {slot.slot}: orphaned — {slot.detail}")
        lines.append(f"verdict      : {'clean' if self.clean else 'DAMAGED'}")
        return "\n".join(lines)


def scrub_file(path: str) -> ScrubReport:
    """fsck a saved index: classify every page slot of the file.

    Never raises on damage — damage is the *output*.  A slot is:

    - ``ok``: sealed image decodes, its stamped page id matches its
      slot, and it is reachable from the root;
    - ``corrupt``: checksum mismatch, undecodable image, stamped id
      disagreeing with the slot, or a truncated trailing slot;
    - ``free``: stamped page id -1 (a freed slot);
    - ``orphaned``: decodes fine but lies outside the superblock's
      node count or is unreachable from the root.
    """
    from repro.gist.persist import read_superblock
    from repro.storage.codecs import (IndexEntryCodec, NodeCodec,
                                      make_leaf_codec)
    from repro.storage.errors import StorageError

    report = ScrubReport(path=path)
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as exc:
        report.detail = f"unreadable: {exc}"
        return report

    try:
        header = read_superblock(raw, path)
    except StorageError as exc:
        report.detail = str(exc)
        return report
    try:
        from repro.core.api import make_extension
        extension = make_extension(header["extension"], header["dim"],
                                   **header.get("ext_config", {}))
    except Exception as exc:  # amlint: disable=REP301
        # fsck's contract is "never raise on damage": a hostile
        # ext_config may fail inside any extension constructor, and all
        # of it must become a report, not a crash.
        report.detail = f"cannot rebuild extension: {exc}"
        return report

    page_size = header["page_size"]
    # Mutable files (repro.gist.mutable) persist the slot span
    # explicitly; legacy files are dense, so it defaults to num_nodes.
    claimed_slots = header.get("num_slots", header["num_nodes"])
    codec = NodeCodec(page_size,
                      make_leaf_codec(header.get("leaf_codec", "f64"),
                                      extension.dim),
                      IndexEntryCodec(extension.pred_codec()))
    report.superblock_ok = True
    report.page_size = page_size
    num_slots, leftover = divmod(len(raw) - page_size, page_size)
    report.num_slots = num_slots

    # First pass: decode every slot.
    decoded = {}
    for slot in range(1, num_slots + 1):
        image = raw[slot * page_size:(slot + 1) * page_size]
        if not any(image):
            # Never-written gap (an aborted allocation's slot): not a
            # node, not damage.
            report.slots.append(SlotReport(slot, "free",
                                           detail="never written"))
            continue
        try:
            page_id, level, entries = codec.decode(image, path=path)
        except StorageError as exc:
            report.slots.append(SlotReport(slot, "corrupt",
                                           detail=str(exc)))
            continue
        if page_id == -1:
            report.slots.append(SlotReport(slot, "free"))
            continue
        if page_id != slot:
            report.slots.append(SlotReport(
                slot, "corrupt", level=level, entries=len(entries),
                detail=f"slot holds page {page_id}"))
            continue
        decoded[slot] = (level, entries)
    if leftover:
        report.slots.append(SlotReport(
            num_slots + 1, "corrupt",
            detail=f"truncated trailing slot ({leftover} bytes)"))

    # Second pass: reachability from the root through decodable pages.
    reachable = set()
    stack = [header["root_slot"]] if header["root_slot"] else []
    while stack:
        slot = stack.pop()
        if slot in reachable or slot not in decoded:
            continue
        reachable.add(slot)
        level, entries = decoded[slot]
        if level > 0:
            stack.extend(child for _, child in entries)

    for slot in sorted(decoded):
        level, entries = decoded[slot]
        if slot > claimed_slots:
            status, detail = "orphaned", "slot beyond superblock slot count"
        elif slot not in reachable:
            status, detail = "orphaned", "unreachable from root"
        else:
            status, detail = "ok", ""
        report.slots.append(SlotReport(slot, status, level=level,
                                       entries=len(entries), detail=detail))
    report.slots.sort(key=lambda s: s.slot)
    return report


def _check_bp(ext: Any, pred: Any, child: Any, child_id: int) -> None:
    """A bounding predicate must hold for everything beneath it.

    Quantized leaves hold *reconstructions*: the predicate was fit to
    the original keys, and a reconstruction may legitimately sit
    outside it by up to the quantization-cell half diagonal (spheres
    and bitten rects do not cover the cell box).  Such keys pass if
    they are within that tolerance of the predicate.
    """
    if child.is_leaf:
        half = child.key_halfwidths()
        tol = (float(np.sqrt((half * half).sum())) + 1e-9
               if half is not None else 0.0)
        for entry in child.entries:
            if not ext.contains(pred, entry.key):
                if half is not None \
                        and ext.min_dist(pred, entry.key) <= tol:
                    continue
                raise TreeInvariantError(
                    f"BP of child {child_id} excludes stored key "
                    f"{entry.key.tolist()}")
    else:
        for entry in child.entries:
            if not ext.covers_pred(pred, entry.pred):
                raise TreeInvariantError(
                    f"BP of child {child_id} fails to cover a grandchild BP")
