"""The GiST extension interface.

An access method is defined entirely by a :class:`GiSTExtension`: the
predicate algebra (``consistent``, ``union``-style predicate builders,
``penalty``, ``pick_split``), distance functions for nearest-neighbor
search, containment tests used for deletion and validation, and the
binary codec that fixes the predicate's stored size (and therefore the
tree's fanout — the paper's Table 3 knob).

Two-tier distances
------------------
``min_dists_node`` must return *lower bounds* on the distance from a
query point to any data reachable under each entry — cheap, vectorized,
used to enqueue children during best-first search.  Extensions with
expensive-but-tighter predicates (JB/XJB) additionally implement
``refine_dist``; the search calls it lazily, only when an entry reaches
the front of the priority queue, and re-queues the entry if the refined
bound pushes it back.  The set of nodes finally expanded is identical to
eager tight evaluation, so I/O counts reflect the tight predicate.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.node import Node
from repro.storage.codecs import Codec


class GiSTExtension:
    """Behaviour bundle specializing the GiST to one access method."""

    #: short identifier used in reports ("rtree", "xjb", ...)
    name: str = "abstract"

    def __init__(self, dim: int) -> None:
        self.dim = dim

    # -- predicate construction --------------------------------------------

    def pred_for_keys(self, keys: np.ndarray) -> Any:
        """Bounding predicate for a leaf node's ``(n, dim)`` key array."""
        raise NotImplementedError

    def pred_for_preds(self, preds: Sequence) -> Any:
        """Bounding predicate covering child predicates (inner nodes)."""
        raise NotImplementedError

    def pred_for_node(self, node: Node) -> Any:
        """Recompute a node's bounding predicate from its contents."""
        if node.is_leaf:
            return self.pred_for_keys(node.keys_array())
        return self.pred_for_preds(node.preds())

    # -- bulk-load construction hooks ---------------------------------------
    #
    # The bulk loader builds whole levels of nodes at once, possibly
    # sharded over forked worker processes.  These hooks exist so that
    # (a) randomized predicate constructions (aMAP) can key their RNG to
    # the node's position instead of a shared stream — the predicate of
    # node (level, index) is then the same no matter which worker builds
    # it, which is what makes parallel builds byte-identical to
    # sequential ones — and (b) vectorizing extensions (JB/XJB) can
    # batch predicate construction across sibling nodes of a level.

    def pred_for_keys_at(self, keys: np.ndarray, token: Tuple[int, int]) -> Any:
        """Positioned :meth:`pred_for_keys`; ``token`` is ``(level,
        index)`` of the node under construction.  Deterministic
        extensions ignore the token."""
        return self.pred_for_keys(keys)

    def pred_for_preds_at(self, preds: Sequence, token: Tuple[int, int]) -> Any:
        """Positioned :meth:`pred_for_preds` (see
        :meth:`pred_for_keys_at`)."""
        return self.pred_for_preds(preds)

    def pred_for_node_at(self, node: Node, token: Tuple[int, int]) -> Any:
        """Positioned :meth:`pred_for_node`.

        Routed through the node's cached stacked views
        (:meth:`~repro.gist.node.Node.keys_array`, extension geometry
        caches), so geometry stacked while building the predicate stays
        memoized on the node for the first queries to reuse.
        """
        if node.is_leaf:
            return self.pred_for_keys_at(node.keys_array(), token)
        return self.pred_for_preds_at(node.preds(), token)

    def preds_for_nodes(self, nodes: Sequence[Node],
                        tokens: Sequence[Tuple[int, int]]) -> List:
        """Bounding predicates for one level's worth of nodes.

        The default loops :meth:`pred_for_node_at`; extensions whose
        construction vectorizes across sibling nodes (JB/XJB corner
        carving) override this with a batched kernel.  Implementations
        must return bit-identical predicates for any partition of the
        node list — the parallel bulk loader shards it arbitrarily.
        """
        return [self.pred_for_node_at(node, token)
                for node, token in zip(nodes, tokens)]

    # -- incremental adjust (online insert path) -----------------------------
    #
    # A mutable tree (repro.gist.mutable) opts into incremental
    # predicate maintenance: instead of recomputing a whole node's
    # predicate from its contents on every insert, ancestors are
    # *widened* just enough to keep the containment invariants.  Both
    # hooks may return None — "no incremental rule, recompute" — which
    # is the default, and must return ``pred`` itself (the identical
    # object) when it already covers, so the tree can stop adjusting
    # early.  Widened predicates must never shrink the covered region:
    # everything the old predicate admitted must stay admitted.

    def adjust_pred_insert(self, pred: Any, key: np.ndarray) -> Any:
        """``pred`` widened to cover the freshly inserted ``key``.

        Returns ``pred`` unchanged when it already covers the key, a
        new widened predicate otherwise, or None to force a full
        recompute (the safe default)."""
        return None

    def adjust_pred_cover(self, pred: Any, child_pred: Any) -> Any:
        """``pred`` widened to cover an updated child predicate.

        Same contract as :meth:`adjust_pred_insert`; ``child_pred`` is
        the predicate just installed one level below."""
        return None

    # -- predicate algebra -----------------------------------------------------

    def consistent(self, pred: Any, query_rect: np.ndarray) -> bool:
        """May data under ``pred`` fall inside the query rectangle?"""
        raise NotImplementedError

    def contains(self, pred: Any, point: np.ndarray) -> bool:
        """Must ``pred`` cover ``point``?  Exact; drives DELETE descent."""
        raise NotImplementedError

    def covers_pred(self, parent_pred: Any, child_pred: Any) -> bool:
        """Conservative check that ``parent_pred`` covers ``child_pred``.

        Used by validation and by the insert path to skip redundant
        parent updates; ``False`` negatives merely cost an update.
        """
        raise NotImplementedError

    def penalty(self, pred: Any, key: np.ndarray) -> float:
        """Cost of routing ``key`` under ``pred`` (INSERT descent)."""
        raise NotImplementedError

    def penalties_node(self, node: Node, key: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`penalty` over an inner node's entries."""
        return np.array([self.penalty(e.pred, key) for e in node.entries])

    def pick_split(self, entries: List, level: int,
                   min_entries: int) -> Tuple[List, List]:
        """Partition an overflowing node's entries into two groups.

        Both groups must have at least ``min_entries`` entries.
        """
        raise NotImplementedError

    # -- distances -------------------------------------------------------------

    def min_dist(self, pred: Any, q: np.ndarray) -> float:
        """Lower bound on the distance from ``q`` to data under ``pred``."""
        raise NotImplementedError

    def min_dists_node(self, node: Node, q: np.ndarray) -> np.ndarray:
        """Vectorized lower bounds for all entries of an inner node.

        The default stacks nothing and loops; extensions should memoize
        stacked predicate arrays in ``node.cache``.
        """
        return np.array([self.min_dist(p, q) for p in node.preds()])

    def min_dists_node_multi(self, node: Node,
                             queries: np.ndarray) -> np.ndarray:
        """:meth:`min_dists_node` for a ``(q, dim)`` query block.

        Returns a ``(q, n)`` matrix whose rows must be bit-identical to
        per-query :meth:`min_dists_node` calls — the batch engine's
        exactness guarantee depends on it.  The default evaluates row by
        row; extensions with stacked geometry caches override this with
        a single kernel.
        """
        return np.stack([self.min_dists_node(node, q) for q in queries])

    #: whether :meth:`refine_dist` tightens :meth:`min_dists_node` bounds
    has_refinement: bool = False

    def refine_dist(self, pred: Any, q: np.ndarray, lower_bound: float) -> float:
        """Tighter lower bound, evaluated lazily at queue-pop time."""
        return lower_bound

    def refine_dists_node(self, node: Node, queries: np.ndarray,
                          dists: np.ndarray) -> np.ndarray:
        """Vectorized refinement screen over ``queries × entries``.

        ``dists`` is the ``(q, n)`` cheap-bound matrix from
        :meth:`min_dists_node_multi`.  Returns a same-shaped matrix of
        refined bounds; a NaN cell means "not screened — call
        :meth:`refine_dist` for this pair when (and if) it reaches the
        queue front".  Cells that are *not* NaN must be bit-identical to
        what the scalar :meth:`refine_dist` would return.  The default
        screens nothing.
        """
        return np.full(dists.shape, np.nan)

    def routing_point(self, pred: Any) -> np.ndarray:
        """A representative point for routing an orphaned subtree's entry
        during delete condensation (typically the predicate's center)."""
        raise NotImplementedError

    def routing_points_multi(self, preds: Sequence) -> np.ndarray:
        """Stacked ``(n, dim)`` :meth:`routing_point` matrix.

        The bulk loader orders every upper level by these centers; the
        default falls back to the per-predicate loop, extensions with
        array-backed predicates compute the whole matrix in one shot.
        """
        return np.stack([self.routing_point(p) for p in preds])

    # -- storage -----------------------------------------------------------------

    def pred_codec(self) -> Codec:
        """Fixed-size codec for this AM's predicate (defines fanout)."""
        raise NotImplementedError

    def config(self) -> dict:
        """Constructor options needed to rebuild this extension
        (persisted in saved-tree headers so files are self-describing)."""
        return {}
