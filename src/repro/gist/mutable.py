"""Crash-safe online mutation for saved indexes.

:class:`MutableTree` opens a file written by
:func:`repro.gist.persist.save_tree` for in-place insert/delete.  Every
mutation runs as one WAL transaction (:mod:`repro.storage.wal`): the
tree's page writes stage in an overlay, commit encodes them, logs them
with the post-mutation superblock image, fsyncs — the durability
point — and only then applies them to the data file.  A process killed
anywhere in that protocol reopens through :func:`~repro.storage.wal.recover`
to exactly the last committed mutation; ``repro fsck --deep`` comes back
clean and queries match a tree that applied only the committed
transactions (the kill-and-recover harness in
:mod:`repro.workload.crash` proves this for all six AM families).

Predicate maintenance on the insert path uses the extensions'
incremental ``adjust_pred_*`` hooks (widen, never recompute-unless-
needed), so online inserts work for every registered family: R/R*-tree
MBR growth, SS/SR-tree sphere unions, aMAP lesser-growth rectangle
widening, and JB/XJB bite invalidation (a key landing inside a carved
bite un-carves it).

Reads during mutation: :meth:`MutableTree.snapshot` pins a
copy-on-write view at the last committed LSN, so a concurrent query
batch never observes a half-applied transaction.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.gist.tree import GiST
from repro.gist.persist import (_MAGIC, read_superblock, save_tree,
                                superblock_image)
from repro.storage.buffer import BufferPool
from repro.storage.diskfile import FilePageFile
from repro.storage.errors import StorageError
from repro.storage.faults import CrashError, CrashInjector
from repro.storage.wal import (RecoveryReport, WALPageFile, WriteAheadLog,
                               default_wal_path, recover)


class MutableTree:
    """A saved index opened for crash-safe insert/delete.

    Construct with :meth:`open` (existing file) or :meth:`create`
    (fresh empty index).  Mutations are atomic and durable; attached
    :class:`~repro.blobworld.cache.QueryResultCache` instances are
    invalidated whenever a mutation commits.
    """

    def __init__(self, tree: GiST, wpf: WALPageFile, path: str,
                 recovery: RecoveryReport) -> None:
        self.tree = tree
        self.wpf = wpf
        self.path = path
        #: what :func:`~repro.storage.wal.recover` did at open time.
        self.recovery = recovery
        self._broken = False
        self._caches: List[Any] = []

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, extension: Any, path: str,
               page_size: int, leaf_codec: str = "f64",
               **open_options: Any) -> "MutableTree":
        """Write an empty index file and open it for mutation."""
        from repro.storage.codecs import make_leaf_codec
        save_tree(GiST(extension, page_size=page_size,
                       leaf_codec=make_leaf_codec(leaf_codec,
                                                  extension.dim)), path)
        return cls.open(path, extension=extension, **open_options)

    @classmethod
    def open(cls, path: str, extension: Any = None,
             buffer_pages: int = 0,
             injector: Optional[CrashInjector] = None,
             wal_path: Optional[str] = None,
             incremental_adjust: bool = True) -> "MutableTree":
        """Recover, then open a saved index for mutation.

        Recovery always runs first: if the previous writer crashed, the
        sidecar log's committed transactions are replayed (and its torn
        tail truncated) before a single page is read.  ``buffer_pages``
        optionally interposes a :class:`~repro.storage.BufferPool`;
        ``injector`` threads a crash-point injector through the commit
        protocol (tests only).
        """
        if wal_path is None:
            wal_path = default_wal_path(path)
        recovery = recover(path, wal_path)
        with open(path, "rb") as f:
            raw = f.read()
        header = read_superblock(raw, path)
        if extension is None:
            from repro.core.api import make_extension
            extension = make_extension(header["extension"], header["dim"],
                                       **header.get("ext_config", {}))
        if header["extension"] != extension.name:
            raise ValueError(
                f"index was saved by {header['extension']!r}, "
                f"got extension {extension.name!r}")
        page_size = header["page_size"]
        codec_id = header.get("leaf_codec", "f64")
        base = FilePageFile.for_extension(path, extension, page_size,
                                          leaf_codec=codec_id)
        base.rebuild_slot_state()
        store: Any = base
        if buffer_pages:
            store = BufferPool(base, buffer_pages)
        wal = WriteAheadLog(wal_path, page_size, injector=injector)
        wpf = WALPageFile(store, wal, injector=injector)
        tree = GiST(extension, store=wpf, page_size=page_size,
                    leaf_codec=base.codec.leaf_codec)
        tree.incremental_adjust = incremental_adjust
        tree.root_id = header["root_slot"] or None
        tree.height = header["height"]
        tree.size = header["size"]
        return cls(tree, wpf, path, recovery)

    def close(self) -> None:
        self.wpf.close()

    def __enter__(self) -> "MutableTree":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- mutation ------------------------------------------------------------

    def insert(self, key: np.ndarray, rid: int) -> None:
        """Durably add one ``(key, RID)`` pair."""
        key = np.asarray(key, dtype=np.float64)
        self._mutate(lambda: self.tree.insert(key, rid))

    def delete(self, key: np.ndarray, rid: int) -> bool:
        """Durably remove one ``(key, RID)`` pair; False if absent."""
        key = np.asarray(key, dtype=np.float64)
        return bool(self._mutate(lambda: self.tree.delete(key, rid)))

    def _mutate(self, op: Callable[[], Any]) -> Any:
        """Run one tree mutation as a logged transaction."""
        if self._broken:
            raise StorageError(
                "tree is poisoned after a crashed commit; reopen through "
                "recovery", path=self.path)
        tree, wpf = self.tree, self.wpf
        saved = (tree.root_id, tree.height, tree.size)
        wpf.begin()
        try:
            result = op()
        except BaseException:
            # The mutation never reached the log: discard the overlay
            # and roll the in-memory bookkeeping back.
            wpf.abort()
            tree.root_id, tree.height, tree.size = saved
            raise
        if not wpf.dirty():
            wpf.commit(None)
            return result
        num_nodes, num_slots = wpf.pending_counts()
        header = {
            "magic": _MAGIC,
            "extension": tree.ext.name,
            "ext_config": tree.ext.config(),
            "dim": tree.ext.dim,
            "page_size": tree.page_size,
            "height": tree.height,
            "size": tree.size,
            "num_nodes": num_nodes,
            "root_slot": tree.root_id or 0,
            "num_slots": num_slots,
            "leaf_codec": tree.leaf_codec.codec_id,
        }
        meta = superblock_image(header, tree.page_size)
        try:
            wpf.commit(meta)
        except CrashError:
            self._broken = True
            raise
        for cache in self._caches:
            # Any structural mutation can change any ranked list (a new
            # nearest neighbor, a deleted one), so the whole cache goes.
            cache.invalidate()
        return result

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> GiST:
        """A read-only tree pinned to the current committed state.

        The returned tree's store is a
        :class:`~repro.storage.wal.SnapshotView`: close it
        (``snap.store.close()``) when done so the owner stops stashing
        copy-on-write pre-images for it.
        """
        view = self.wpf.snapshot()
        snap = GiST(self.tree.ext, store=view,
                    page_size=self.tree.page_size,
                    leaf_codec=self.tree.leaf_codec)
        snap.root_id = self.tree.root_id
        snap.height = self.tree.height
        snap.size = self.tree.size
        return snap

    def attach_cache(self, cache: Any) -> None:
        """Invalidate ``cache`` whenever a mutation commits."""
        self._caches.append(cache)

    def detach_cache(self, cache: Any) -> None:
        self._caches.remove(cache)

    # -- maintenance ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Sync the data file and reset the log."""
        self.wpf.checkpoint()

    @property
    def wal_size(self) -> int:
        """Bytes of pending redo log."""
        return self.wpf.wal.size_bytes()
