"""Batched best-first k-NN: one shared traversal frontier per query block.

:func:`knn_search_batch` executes a block of nearest-neighbor queries
together while reproducing, query by query, the *exact* observable
behaviour of the sequential :func:`repro.gist.nn.knn_search` — the same
results (distances, rids, tie order, bit for bit) and the same counted
node accesses in the same per-query order.  What changes is the cost:

- **Shared fetches.**  Each page is fetched and decoded at most once per
  block.  The first query to need a page reads it through the tree's
  counted path; every later visitor books its logical access through
  ``store.record_access`` (same counters and listeners, no I/O) and
  reuses the decoded node — whose stacked geometry arrays
  (:meth:`~repro.gist.node.Node.cached`) are already warm.

- **Blocked kernels.**  When several queries expand the same node in the
  same round, their lower bounds are computed by one ``entries ×
  queries`` kernel (:meth:`~repro.gist.extension.GiSTExtension.
  min_dists_node_multi`), and for JB/XJB the bite-aware refinement is
  pre-screened for the whole matrix
  (:meth:`~repro.gist.extension.GiSTExtension.refine_dists_node`), so
  most entries never reach the scalar box search at all.

- **Sorted-run heaps.**  A node expansion pushes *one* heap item — a run
  of kept entries sorted by ``(dist, counter)`` — instead of one item
  per entry; popping a run element re-enqueues its successor, the
  classic k-way-merge trick.  At every moment the heap minimum equals
  the minimum over all outstanding sequential items (each run's head is
  its smallest remaining element), so pops, and even the heap-front
  value the lazy-refinement test inspects, are unchanged while heap
  traffic drops from O(entries) to O(pops).

Exactness rests on the per-query state machine consuming tie-break
counters precisely as the sequential loop does (root = 0, kept entries
in entry order at expansion, one per refinement re-queue) and on the
batch kernels being bit-identical to their scalar counterparts; see
DESIGN.md, "Batched query engine".
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.gist.nn import _update_tau

#: heap item kinds; never compared — (dist, counter) keys are unique.
_SINGLE = 0    # payload (pred, page_id, level, refined)
_NODE_RUN = 1  # payload (run, pos)
_LEAF_RUN = 2  # payload (run, pos)

#: queries traversed together; bounds the block node cache's footprint.
DEFAULT_BLOCK_SIZE = 256

#: called as ``on_access(qid, page_id, level)`` for every logical
#: counted access, in each query's own access order.
AccessCallback = Callable[[int, int, int], None]


class _NodeRun:
    """Kept children of one expanded inner node, in heap-key order.

    Entries are referenced by index (``sel``) into the owning node so
    run construction is pure array work; the expensive per-entry
    attribute access happens once per *pop*, not once per kept entry.
    """

    __slots__ = ("dists", "counters", "node", "sel", "level",
                 "refined", "tights", "n")


class _LeafRun:
    """Kept point candidates of one expanded leaf, in heap-key order."""

    __slots__ = ("dists", "counters", "rids", "n")


class _QueryState:
    """One query's sequential search state, pausable at node reads."""

    __slots__ = ("qid", "q", "heap", "results", "topk", "tau",
                 "next_counter", "pending", "done")

    def __init__(self, qid: int, q: np.ndarray, root_id: int, height: int) -> None:
        self.qid = qid
        self.q = q
        # The root item consumes counter 0, exactly like the sequential
        # search's first next(counter).
        self.heap: list = [(0.0, 0, _SINGLE, (None, root_id, height - 1,
                                              True))]
        self.results: List[Tuple[float, int]] = []
        self.topk = np.empty(0, dtype=np.float64)
        self.tau: Optional[float] = None
        self.next_counter = 1
        self.pending: Optional[Tuple[int, int]] = None
        self.done = False


def knn_search_batch(tree: Any, queries: np.ndarray, k: int, block_size: Optional[int] = None,
                     on_access: Optional[AccessCallback] = None,
                     ) -> List[List[Tuple[float, int]]]:
    """k-NN results for every query, bit-identical to ``knn_search``.

    ``queries`` is a ``(Q, dim)`` array-like; the return value is one
    result list per query, in query order.  ``block_size`` caps how many
    queries share a traversal frontier (and hence how long decoded nodes
    are pinned); ``on_access`` observes every counted node access with
    its owning query id — the batched profiler's replacement for a store
    listener, which could not tell concurrent queries apart.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2:
        raise ValueError(f"queries must be (Q, dim), got {queries.shape}")
    if tree.root_id is None:
        return [[] for _ in range(len(queries))]
    size = block_size if block_size is not None else DEFAULT_BLOCK_SIZE
    if size < 1:
        raise ValueError(f"block_size must be positive, got {size}")
    results: List[List[Tuple[float, int]]] = []
    for start in range(0, len(queries), size):
        results.extend(_run_block(tree, queries[start:start + size], k,
                                  on_access, start))
    return results


def _run_block(tree: Any, queries: np.ndarray, k: int,
               on_access: Optional[AccessCallback],
               qid0: int) -> List[List[Tuple[float, int]]]:
    ext = tree.ext
    states = [_QueryState(qid0 + i, queries[i], tree.root_id, tree.height)
              for i in range(len(queries))]
    #: page id -> decoded node, or None for quarantined/corrupt pages.
    nodes: Dict[int, Optional[object]] = {}
    active = list(states)

    while active:
        # Advance every live query to its next needed node read.  Each
        # query performs its own pops/refinements in its own order, so
        # its observable event sequence matches a solo run exactly.
        requests: Dict[int, List[_QueryState]] = {}
        survivors = []
        for st in active:
            req = _advance(st, ext, k)
            if req is None:
                continue
            requests.setdefault(req[0], []).append(st)
            survivors.append(st)
        if not requests:
            break

        # Fetch every page this round still misses in one bulk read —
        # contiguous slot runs gather with a single pread/mmap slice and
        # batch-verify their seals.  Each query pends on exactly one
        # page per round, so its own access order (and therefore its
        # trace) is unaffected by when within the round the page lands.
        fresh = [pid for pid in requests if pid not in nodes]
        if fresh:
            nodes.update(tree._read_query_many(
                [(pid, requests[pid][0].pending[1]) for pid in fresh]))
        fresh_set = set(fresh)

        for page_id, waiters in requests.items():
            node = nodes[page_id]
            if page_id in fresh_set:
                # The bulk read counted the fetch once; attribute it to
                # the first waiter, as a solo read here would have.
                if node is not None and on_access is not None:
                    on_access(waiters[0].qid, page_id, node.level)
                repeats = waiters[1:]
            else:
                repeats = waiters
            if node is not None:
                for st in repeats:
                    tree.store.record_access(page_id, node.level)
                    if on_access is not None:
                        on_access(st.qid, page_id, node.level)
            for st in waiters:
                st.pending = None
            if node is None or not len(node):
                continue
            if node.is_leaf:
                _expand_leaf(waiters, node, k)
            else:
                _expand_inner(waiters, node, ext)
        active = survivors

    return [st.results for st in states]


def _advance(state: _QueryState, ext: Any, k: int) -> Optional[Tuple[int, int]]:
    """Run one query until it needs a node read; None when finished.

    Mirrors the sequential loop body statement for statement, with runs
    standing in for individually pushed entries.
    """
    heap = state.heap
    results = state.results
    q = state.q
    while True:
        if len(results) >= k or not heap:
            state.done = True
            return None
        # Popping a run element and enqueueing its successor is a single
        # heapreplace sift; the heap minimum afterwards is the same as
        # if every run element sat in the heap individually.
        dist, _, kind, payload = heap[0]

        if kind == _LEAF_RUN:
            run, pos = payload
            nxt = pos + 1
            if nxt < run.n:
                heapq.heapreplace(heap, (run.dists[nxt], run.counters[nxt],
                                         _LEAF_RUN, (run, nxt)))
            else:
                heapq.heappop(heap)
            results.append((float(dist), int(run.rids[pos])))
            continue

        if kind == _NODE_RUN:
            run, pos = payload
            nxt = pos + 1
            if nxt < run.n:
                heapq.heapreplace(heap, (run.dists[nxt], run.counters[nxt],
                                         _NODE_RUN, (run, nxt)))
            else:
                heapq.heappop(heap)
            entry = run.node.entries[run.sel[pos]]
            pred = entry.pred
            page_id = entry.child
            level = run.level
            refined = run.refined
            tight = None if run.tights is None else run.tights[pos]
        else:
            heapq.heappop(heap)
            pred, page_id, level, refined = payload
            tight = None

        if not refined:
            if tight is None or tight != tight:     # NaN: not screened
                tight = ext.refine_dist(pred, q, dist)
            if state.tau is not None and tight >= state.tau:
                continue
            if heap and tight > heap[0][0]:
                heapq.heappush(heap, (float(tight), state.next_counter,
                                      _SINGLE, (pred, page_id, level, True)))
                state.next_counter += 1
                continue

        state.pending = (page_id, level)
        return state.pending


def _expand_leaf(waiters: List[_QueryState], node: Any, k: int) -> None:
    # rid_array reads the "rids" cache a zero-copy block decode (or the
    # bulk loader) left behind; materializing entry objects here would
    # cost more than the distance kernel below.
    keys = node.keys_array()
    rids = node.rid_array()
    half = node.key_halfwidths()
    if len(waiters) == 1:
        if half is None:
            # Same 2-D expression as the sequential search.
            rows = np.sqrt(((keys - waiters[0].q) ** 2).sum(axis=1))[None]
        else:
            # Quantized leaf: same VA-file cell lower bound as the
            # sequential kernel in repro.gist.nn.
            diff = np.abs(keys - waiters[0].q) - half
            np.maximum(diff, 0.0, out=diff)
            rows = np.sqrt((diff * diff).sum(axis=1))[None]
    else:
        qblock = np.stack([st.q for st in waiters])
        if half is None:
            rows = np.sqrt(((keys[None, :, :] - qblock[:, None, :]) ** 2)
                           .sum(axis=-1))
        else:
            diff = np.abs(keys[None, :, :] - qblock[:, None, :]) - half
            np.maximum(diff, 0.0, out=diff)
            rows = np.sqrt((diff * diff).sum(axis=-1))
    for st, dists in zip(waiters, rows):
        if st.tau is None:
            kept_d = dists
            kept_rids = rids
        else:
            idx = np.nonzero(dists < st.tau)[0]
            kept_d = dists[idx]
            kept_rids = rids[idx]
        m = len(kept_d)
        if m:
            base = st.next_counter
            st.next_counter += m
            order = np.argsort(kept_d, kind="stable")
            run = _LeafRun()
            run.dists = kept_d[order]
            run.counters = base + order
            run.rids = kept_rids[order]
            run.n = m
            heapq.heappush(st.heap, (run.dists[0], run.counters[0],
                                     _LEAF_RUN, (run, 0)))
        st.tau, st.topk = _update_tau(st.topk, kept_d, k)


def _expand_inner(waiters: List[_QueryState], node: Any, ext: Any) -> None:
    if len(waiters) == 1:
        rows = ext.min_dists_node(node, waiters[0].q)[None]
        qblock = waiters[0].q[None]
    else:
        qblock = np.stack([st.q for st in waiters])
        rows = ext.min_dists_node_multi(node, qblock)
    lazy = ext.has_refinement
    tight_rows = ext.refine_dists_node(node, qblock, rows) if lazy else None
    child_level = node.level - 1
    for i, (st, dists) in enumerate(zip(waiters, rows)):
        if st.tau is None:
            sel = None
            kept_d = dists
        else:
            sel = np.nonzero(dists < st.tau)[0]
            kept_d = dists[sel]
        m = len(kept_d)
        if m == 0:
            continue
        base = st.next_counter
        st.next_counter += m
        order = np.argsort(kept_d, kind="stable")
        sel = order if sel is None else sel[order]
        run = _NodeRun()
        run.dists = kept_d[order]
        run.counters = base + order
        run.node = node
        run.sel = sel
        run.level = child_level
        run.refined = not lazy
        run.tights = tight_rows[i][sel] if lazy else None
        run.n = m
        heapq.heappush(st.heap, (run.dists[0], run.counters[0],
                                 _NODE_RUN, (run, 0)))
