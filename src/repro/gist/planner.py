"""Cost-based routing between index traversal and a flat-file scan.

The paper's section 3.2 break-even analysis is usually quoted as a
design-time verdict: an access method must touch fewer than ~1/15 of
the leaf pages or "simply scanning a flat file" wins.  This module
turns that analysis into a *run-time* decision.  Before stage one of a
query batch, :class:`QueryPlanner` estimates the pages the tree
traversal will touch, prices both executions with the same
:class:`~repro.storage.iomodel.DiskModel` that backs the break-even
math, and routes the batch to whichever is modeled cheaper:

- **tree**: per query, a root-to-leaf descent (``height - 1`` random
  inner reads) plus enough leaf pages to surface ``num_blobs``
  candidates at the tree's observed fill, inflated by an ``overscan``
  factor for the pages k-NN expands but does not harvest.  Pages
  shared across the batch are capped at the tree's page census — a
  batch cannot read more distinct pages than exist.
- **scan**: one sequential pass over the flat file (the whole batch
  shares a single pass; the scan kernel is vectorized across queries).

A quarantined or degraded tree always routes to the scan: its answers
are known-lossy while the flat file is complete, so the planner treats
correctness as infinitely expensive.

``PlannerConfig.from_breakeven_json`` loads the constants the
``bench_scan_breakeven`` benchmark measures, so deployments can replace
the Barracuda defaults with observed hardware behavior.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.storage.iomodel import DiskModel


@dataclass(frozen=True)
class PlannerConfig:
    """Tunable constants of the traversal cost estimate.

    ``overscan`` multiplies the minimal leaf-page count (candidates /
    fill): best-first k-NN reads boundary pages it never harvests from,
    and quantized leaves add cell-bound slack.  ``leaf_fill`` is the
    assumed entries-per-leaf fraction of capacity when the tree cannot
    be asked (it usually can).  ``scan_bias_ms`` shifts the comparison:
    positive values make the planner prefer the tree on near-ties
    (scans hold no index statistics to reuse).
    """

    overscan: float = 1.35
    leaf_fill: float = 0.7
    scan_bias_ms: float = 0.0
    model: DiskModel = field(default_factory=DiskModel)

    @classmethod
    def from_breakeven_json(cls, path: str) -> "PlannerConfig":
        """Build a config from a ``BENCH_scan_breakeven.json`` file.

        The benchmark (``benchmarks/bench_scan_breakeven.py``) emits a
        ``planner_defaults`` object with the fields of this dataclass
        plus the disk model parameters it priced them under; unknown
        fields are ignored so the benchmark may grow new outputs
        without breaking older readers.
        """
        with open(path) as f:
            doc = json.load(f)
        defaults = doc.get("planner_defaults", doc)
        model_doc = defaults.get("model", {})
        model = DiskModel(**{k: model_doc[k] for k in
                             ("seek_ms", "rotational_ms",
                              "throughput_mb_s", "page_size")
                             if k in model_doc})
        kwargs: Dict[str, Any] = {
            k: float(defaults[k])
            for k in ("overscan", "leaf_fill", "scan_bias_ms")
            if k in defaults}
        return cls(model=model, **kwargs)


@dataclass
class Plan:
    """One routing decision with the estimates that produced it."""

    #: "tree" or "scan"
    choice: str
    num_queries: int
    num_blobs: int
    est_tree_pages: int
    est_scan_pages: int
    est_tree_ms: float
    est_scan_ms: float
    reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "choice": self.choice,
            "num_queries": self.num_queries,
            "num_blobs": self.num_blobs,
            "est_tree_pages": self.est_tree_pages,
            "est_scan_pages": self.est_scan_pages,
            "est_tree_ms": round(self.est_tree_ms, 3),
            "est_scan_ms": round(self.est_scan_ms, 3),
            "reason": self.reason,
        }


class QueryPlanner:
    """Prices a candidate batch against ``tree`` and a flat scan.

    Construct once per (tree, flat file) pairing; :meth:`plan_batch`
    is cheap enough to call per batch.  The tree's superblock-backed
    page census (``num_nodes``/``nodes_by_level``) and its leaf
    capacity feed the estimate; the flat file contributes only its
    sequential page count.
    """

    def __init__(self, tree: Any, flat: Any,
                 config: Optional[PlannerConfig] = None) -> None:
        self.tree = tree
        self.flat = flat
        self.config = config or PlannerConfig()
        # Census once: page counts only change under mutation, and a
        # mutated tree gets a fresh planner with its fresh snapshot.
        by_level = tree.nodes_by_level()
        self._num_leaves = by_level.get(0, 0)
        self._num_pages = sum(by_level.values())
        size = getattr(tree, "size", 0)
        if self._num_leaves and size:
            self._avg_leaf_entries = max(1.0, size / self._num_leaves)
        else:
            self._avg_leaf_entries = max(
                1.0, self.config.leaf_fill * tree.leaf_capacity)

    # -- estimates -----------------------------------------------------------

    def tree_pages_estimate(self, num_queries: int, num_blobs: int) -> int:
        """Distinct random page reads a batch of traversals costs."""
        height = max(1, getattr(self.tree, "height", 1))
        leaves = math.ceil(num_blobs / self._avg_leaf_entries)
        per_query = (height - 1) + leaves * self.config.overscan
        est = math.ceil(num_queries * per_query)
        # The batch engine dedupes page reads within a block, so the
        # batch can never read more distinct pages than the tree holds.
        return min(est, max(self._num_pages, 1))

    def plan_batch(self, num_queries: int, num_blobs: int) -> Plan:
        """Route one batch; returns the decision plus its estimates."""
        model = self.config.model
        scan_pages = self.flat.num_pages
        tree_pages = self.tree_pages_estimate(num_queries, num_blobs)
        tree_ms = model.random_reads_ms(tree_pages)
        scan_ms = model.scan_ms(scan_pages) + self.config.scan_bias_ms

        degraded = bool(getattr(self.tree, "quarantine_enabled", False))
        report = getattr(self.tree, "degradation", None)
        degraded = degraded or bool(
            report is not None and getattr(report, "is_degraded", False))
        if degraded:
            choice, reason = "scan", "tree quarantined/degraded"
        elif tree_ms <= scan_ms:
            choice, reason = "tree", (
                f"{tree_pages} random reads beat a "
                f"{scan_pages}-page scan")
        else:
            choice, reason = "scan", (
                f"{tree_pages} random reads cost more than a "
                f"{scan_pages}-page scan")
        return Plan(choice=choice, num_queries=num_queries,
                    num_blobs=num_blobs, est_tree_pages=tree_pages,
                    est_scan_pages=scan_pages, est_tree_ms=tree_ms,
                    est_scan_ms=scan_ms, reason=reason)
