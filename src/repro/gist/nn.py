"""Best-first nearest-neighbor search (Hjaltason & Samet).

Nearest-neighbor queries behave like expanding-sphere range queries
(paper section 5, Figure 9): the search maintains a priority queue of
tree entries keyed by a lower bound on their distance to the query point
and expands them in nondecreasing order.  Because every extension's
``min_dist`` is a true lower bound, the k-th result is exact.

Lazy refinement
---------------
JB/XJB predicates have a cheap bound (plain MBR distance) and a tighter,
costlier one (bite-aware distance).  Entries are enqueued with the cheap
bound; when an entry surfaces at the front of the queue it is refined
once and re-queued if the tighter bound no longer wins.  A node is read
(costing an I/O) only if its *refined* bound is smaller than everything
else outstanding — exactly the set of nodes an eager tight-bound search
would read, so the access counts the profiler sees reflect the tight
predicate.

Candidate pruning
-----------------
The search tracks the k-th smallest *point* distance seen so far (the
provisional answer radius ``tau``).  Entries whose lower bound reaches
``tau`` are never enqueued, and refined entries whose tight bound
reaches ``tau`` are dropped instead of re-queued.  This is invisible to
the search's observable behaviour: every pruned item ranks behind at
least k already-enqueued point candidates (all with smaller tie-break
counters), so it could never surface before the k-th result pops — the
results, the node reads, and even the heap-front values the refinement
test sees are all unchanged (see DESIGN.md, "Batched query engine", for
the argument).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

import numpy as np

_NODE = 0
_POINT = 1


def knn_search(tree: Any, query: np.ndarray, k: int) -> List[Tuple[float, int]]:
    """The ``k`` nearest leaf keys to ``query`` as ``(distance, rid)``.

    Node reads go through the tree's counting read path.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if tree.root_id is None:
        return []
    query = np.asarray(query, dtype=np.float64)
    ext = tree.ext
    counter = itertools.count()

    # Heap items: (dist, tiebreak, kind, payload, refined)
    #   kind _NODE:  payload = (pred_or_None, page_id, level)
    #   kind _POINT: payload = rid
    heap = [(0.0, next(counter), _NODE,
             (None, tree.root_id, tree.height - 1), True)]
    results: List[Tuple[float, int]] = []
    # Provisional k-th candidate distance; None until k points are known.
    topk = np.empty(0, dtype=np.float64)
    tau: Optional[float] = None

    while heap and len(results) < k:
        dist, _, kind, payload, refined = heapq.heappop(heap)

        if kind == _POINT:
            results.append((dist, payload))
            continue

        pred, page_id, level = payload
        if not refined and ext.has_refinement and pred is not None:
            tight = ext.refine_dist(pred, query, dist)
            if tau is not None and tight >= tau:
                continue
            if heap and tight > heap[0][0]:
                heapq.heappush(
                    heap, (tight, next(counter), _NODE, payload, True))
                continue

        node = tree._read_query(page_id, level)
        if node is None:
            continue
        if node.is_leaf:
            if not node.entries:
                continue
            keys = node.keys_array()
            half = node.key_halfwidths()
            if half is None:
                dists = np.sqrt(((keys - query) ** 2).sum(axis=1))
            else:
                # Quantized leaf: keys are cell centers, the original
                # key lies within `half` per axis.  Shrinking each
                # coordinate delta by the half width gives the VA-file
                # cell lower bound — it can only underestimate the true
                # distance, so ranking by it keeps every true neighbor
                # in the candidate set (the rerank stage restores exact
                # order).
                diff = np.abs(keys - query) - half
                np.maximum(diff, 0.0, out=diff)
                dists = np.sqrt((diff * diff).sum(axis=1))
            kept = np.nonzero(dists < tau)[0] if tau is not None \
                else range(len(dists))
            entries = node.entries
            for i in kept:
                heapq.heappush(
                    heap, (float(dists[i]), next(counter), _POINT,
                           entries[i].rid, True))
            tau, topk = _update_tau(topk, dists[kept] if tau is not None
                                    else dists, k)
        else:
            dists = ext.min_dists_node(node, query)
            lazy = ext.has_refinement
            kept = np.nonzero(dists < tau)[0] if tau is not None \
                else range(len(dists))
            entries = node.entries
            child_level = node.level - 1
            for i in kept:
                heapq.heappush(
                    heap, (float(dists[i]), next(counter), _NODE,
                           (entries[i].pred, entries[i].child, child_level),
                           not lazy))

    return results


def _update_tau(topk: np.ndarray, dists: np.ndarray,
                k: int) -> Tuple[Optional[float], np.ndarray]:
    """Fold freshly seen point distances into the running k smallest.

    Returns the new provisional k-th distance (None while fewer than
    ``k`` candidates have been seen) and the updated sorted array.  The
    batch engine performs the identical update so both searches prune
    with the same thresholds at the same moments.
    """
    if len(dists):
        topk = np.sort(np.concatenate((topk, dists)))[:k]
    if len(topk) == k:
        return float(topk[-1]), topk
    return None, topk
