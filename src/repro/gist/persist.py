"""Tree persistence: dump and reload a GiST as real page images.

The byte accounting the tree does in memory is made honest here: every
node round-trips through the fixed-size node codec into a page-sized
slot of a single file, with a small JSON superblock in page 0.
"""

from __future__ import annotations

import json
import struct
from typing import Dict

from repro.gist.entry import IndexEntry, LeafEntry
from repro.gist.node import Node
from repro.gist.tree import GiST
from repro.storage.codecs import NodeCodec
from repro.storage.pagefile import MemoryPageFile

_MAGIC = "repro-gist-v1"


def save_tree(tree: GiST, path: str) -> None:
    """Write the tree to ``path`` as fixed-size page images."""
    codec = NodeCodec(tree.page_size, tree.leaf_codec, tree.index_codec)
    nodes = list(tree.iter_nodes()) if tree.root_id is not None else []
    # Page slots are assigned densely in traversal order; the superblock
    # maps original page ids to slots.
    slot_of: Dict[int, int] = {n.page_id: i + 1 for i, n in enumerate(nodes)}
    header = {
        "magic": _MAGIC,
        "extension": tree.ext.name,
        "ext_config": tree.ext.config(),
        "dim": tree.ext.dim,
        "page_size": tree.page_size,
        "height": tree.height,
        "size": tree.size,
        "num_nodes": len(nodes),
        "root_slot": slot_of.get(tree.root_id, 0),
    }
    blob = json.dumps(header).encode()
    if len(blob) + 4 > tree.page_size:
        raise ValueError("superblock overflow")
    with open(path, "wb") as f:
        f.write(struct.pack("<I", len(blob)) + blob)
        f.write(b"\x00" * (tree.page_size - 4 - len(blob)))
        for node in nodes:
            entries = node.entries
            if not node.is_leaf:
                entries = [IndexEntry(e.pred, slot_of[e.child])
                           for e in entries]
            f.write(codec.encode(slot_of[node.page_id], node.level,
                                 [tuple(e) for e in entries]))


def load_tree(extension=None, path: str = None) -> GiST:
    """Reload a tree saved by :func:`save_tree`.

    With ``extension=None`` the saved header's extension name and config
    rebuild the access method automatically (files are self-describing);
    an explicitly passed extension is checked against the header.
    """
    if path is None and isinstance(extension, str):
        extension, path = None, extension
    with open(path, "rb") as f:
        raw = f.read()
    try:
        (hlen,) = struct.unpack_from("<I", raw, 0)
        header = json.loads(raw[4:4 + hlen])
    except (struct.error, ValueError):
        raise ValueError(f"{path} is not a saved GiST") from None
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a saved GiST")
    if extension is None:
        from repro.core.api import make_extension
        extension = make_extension(header["extension"], header["dim"],
                                   **header.get("ext_config", {}))
    if header["extension"] != extension.name:
        raise ValueError(
            f"tree was saved by {header['extension']!r}, "
            f"got extension {extension.name!r}")
    if header["dim"] != extension.dim:
        raise ValueError(
            f"dimension mismatch: saved {header['dim']}, "
            f"extension {extension.dim}")

    page_size = header["page_size"]
    tree = GiST(extension, store=MemoryPageFile(), page_size=page_size)
    codec = NodeCodec(page_size, tree.leaf_codec, tree.index_codec)

    root = None
    for slot in range(1, header["num_nodes"] + 1):
        image = raw[slot * page_size:(slot + 1) * page_size]
        page_id, level, raw_entries = codec.decode(image)
        if level == 0:
            entries = [LeafEntry(k, rid) for k, rid in raw_entries]
        else:
            entries = [IndexEntry(pred, child)
                       for pred, child in raw_entries]
        node = Node(page_id, level, entries)
        tree.store.write(node)
        tree.store.reserve(page_id)
        if slot == header["root_slot"]:
            root = node
    if root is not None:
        tree.adopt(root, header["height"], header["size"])
    return tree
