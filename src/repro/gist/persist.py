"""Tree persistence: dump and reload a GiST as real page images.

The byte accounting the tree does in memory is made honest here: every
node round-trips through the fixed-size node codec into a page-sized
slot of a single file, with a small JSON superblock in page 0.

Resilience: the superblock carries a CRC32C trailer in its last 8 bytes
and every node page is sealed by the codec, so a truncated, bit-flipped,
or otherwise damaged file fails loading with a typed
:class:`~repro.storage.errors.StorageError` subclass naming the file —
never a raw ``struct.error`` or ``json.JSONDecodeError``.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict

from repro.gist.entry import IndexEntry
from repro.gist.node import Node
from repro.gist.tree import GiST
from repro.storage.codecs import LEAF_CODECS, NodeCodec, make_leaf_codec
from repro.storage.errors import PageCorruptError
from repro.storage.integrity import FORMAT_EPOCH, crc32c, verify_image
from repro.storage.page import PAGE_HEADER_SIZE
from repro.storage.pagefile import MemoryPageFile

_MAGIC = "repro-gist-v1"

#: bytes reserved at the end of page 0 for (crc32c, epoch).
_SUPERBLOCK_TRAILER = 8


def superblock_image(header: Dict, page_size: int) -> bytes:
    """Render a header dict as a sealed page-0 image.

    Shared by :func:`save_tree` and the WAL commit path
    (:mod:`repro.storage.wal`), whose transactions carry the complete
    post-commit superblock image so redo can rewrite page 0 like any
    other page.
    """
    blob = json.dumps(header).encode()
    if len(blob) + 4 + _SUPERBLOCK_TRAILER > page_size:
        raise ValueError("superblock overflow")
    page0 = struct.pack("<I", len(blob)) + blob
    page0 += b"\x00" * (page_size - _SUPERBLOCK_TRAILER - len(page0))
    page0 += struct.pack("<II", crc32c(page0), FORMAT_EPOCH)
    return page0


def save_tree(tree: GiST, path: str) -> None:
    """Write the tree to ``path`` as fixed-size page images."""
    codec = NodeCodec(tree.page_size, tree.leaf_codec, tree.index_codec)
    nodes = list(tree.iter_nodes()) if tree.root_id is not None else []
    # Page slots are assigned densely in traversal order; the superblock
    # maps original page ids to slots.
    slot_of: Dict[int, int] = {n.page_id: i + 1 for i, n in enumerate(nodes)}
    header = {
        "magic": _MAGIC,
        "extension": tree.ext.name,
        "ext_config": tree.ext.config(),
        "dim": tree.ext.dim,
        "page_size": tree.page_size,
        "height": tree.height,
        "size": tree.size,
        "num_nodes": len(nodes),
        "root_slot": slot_of.get(tree.root_id, 0),
        # A freshly saved file is dense: every slot holds a live node.
        # Mutable files (repro.gist.mutable) grow sparse as deletes
        # free slots; their superblocks keep num_slots > num_nodes.
        "num_slots": len(nodes),
        # Versions the leaf-page body format; readers without the field
        # (pre-quantization files) imply the original "f64" layout.
        "leaf_codec": tree.leaf_codec.codec_id,
    }
    page0 = superblock_image(header, tree.page_size)
    with open(path, "wb") as f:
        f.write(page0)
        for node in nodes:
            entries = node.entries
            if not node.is_leaf:
                entries = [IndexEntry(e.pred, slot_of[e.child])
                           for e in entries]
            f.write(codec.encode(slot_of[node.page_id], node.level,
                                 [tuple(e) for e in entries]))


def read_superblock(raw: bytes, path: str) -> dict:
    """Parse and verify the page-0 superblock of a saved index.

    Raises :class:`PageCorruptError` (naming ``path``) on any damage:
    truncation, unparseable JSON, wrong magic, implausible geometry, or
    a checksum mismatch.  Legacy superblocks without a trailer verify
    by structure only.
    """
    if len(raw) < 4:
        raise PageCorruptError("not a saved GiST (file too short)",
                               path=path)
    (hlen,) = struct.unpack_from("<I", raw, 0)
    if hlen <= 0 or 4 + hlen > len(raw):
        raise PageCorruptError("not a saved GiST (bad superblock length)",
                               path=path)
    try:
        header = json.loads(raw[4:4 + hlen])
    except ValueError:
        raise PageCorruptError("not a saved GiST (superblock is not JSON)",
                               path=path) from None
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise PageCorruptError("not a saved GiST (bad magic)", path=path)

    def _int_field(key: str, minimum: int) -> int:
        value = header.get(key)
        if not isinstance(value, int) or value < minimum:
            raise PageCorruptError(
                f"superblock field {key!r} invalid: {value!r}", path=path)
        return value

    page_size = _int_field("page_size", PAGE_HEADER_SIZE + 1)
    _int_field("dim", 1)
    num_nodes = _int_field("num_nodes", 0)
    _int_field("height", 0)
    _int_field("size", 0)
    root_slot = _int_field("root_slot", 0)
    # Mutable files carry num_slots >= num_nodes (freed slots linger);
    # legacy and freshly saved files are dense, so it defaults to
    # num_nodes.
    num_slots = _int_field("num_slots", 0) if "num_slots" in header \
        else num_nodes
    if num_slots < num_nodes:
        raise PageCorruptError(
            f"superblock num_slots {num_slots} below num_nodes "
            f"{num_nodes}", path=path)
    if root_slot > num_slots:
        raise PageCorruptError(
            f"superblock root_slot {root_slot} exceeds num_slots "
            f"{num_slots}", path=path)
    if len(raw) < (num_slots + 1) * page_size:
        raise PageCorruptError(
            f"superblock claims {num_slots} slots of {page_size} bytes "
            f"but the file holds only {len(raw)} bytes", path=path)
    if not isinstance(header.get("extension"), str):
        raise PageCorruptError("superblock field 'extension' invalid",
                               path=path)
    codec_id = header.get("leaf_codec", "f64")
    if not isinstance(codec_id, str) or codec_id not in LEAF_CODECS:
        raise PageCorruptError(
            f"superblock field 'leaf_codec' invalid: {codec_id!r} "
            f"(known: {sorted(LEAF_CODECS)})", path=path)

    # Checksum trailer (legacy files carry zeros there: skip).
    if len(raw) >= page_size:
        crc, epoch = struct.unpack_from(
            "<II", raw, page_size - _SUPERBLOCK_TRAILER)
        if not (crc == 0 and epoch == 0):
            actual = crc32c(raw[:page_size - _SUPERBLOCK_TRAILER])
            if actual != crc:
                raise PageCorruptError(
                    f"superblock checksum mismatch: stored {crc:#010x}, "
                    f"computed {actual:#010x}", path=path)
    return header


def load_tree(extension: Any = None, path: str = None) -> GiST:
    """Reload a tree saved by :func:`save_tree`.

    With ``extension=None`` the saved header's extension name and config
    rebuild the access method automatically (files are self-describing);
    an explicitly passed extension is checked against the header.
    """
    if path is None and isinstance(extension, str):
        extension, path = None, extension
    with open(path, "rb") as f:
        raw = f.read()
    header = read_superblock(raw, path)
    if extension is None:
        from repro.core.api import make_extension
        extension = make_extension(header["extension"], header["dim"],
                                   **header.get("ext_config", {}))
    if header["extension"] != extension.name:
        raise ValueError(
            f"tree was saved by {header['extension']!r}, "
            f"got extension {extension.name!r}")
    if header["dim"] != extension.dim:
        raise ValueError(
            f"dimension mismatch: saved {header['dim']}, "
            f"extension {extension.dim}")

    page_size = header["page_size"]
    leaf_codec = make_leaf_codec(header.get("leaf_codec", "f64"),
                                 extension.dim)
    tree = GiST(extension, store=MemoryPageFile(), page_size=page_size,
                leaf_codec=leaf_codec)
    codec = NodeCodec(page_size, tree.leaf_codec, tree.index_codec)

    root = None
    live = 0
    num_slots = header.get("num_slots", header["num_nodes"])
    for slot in range(1, num_slots + 1):
        image = raw[slot * page_size:(slot + 1) * page_size]
        # Mutable files are sparse: freed slots are stamped with page
        # id -1, and aborted allocations can leave never-written
        # all-zero gaps.  Neither holds a node.
        if not any(image):
            continue
        node = _decode_slot(codec, image, path)
        if node is None:
            continue
        if node.page_id != slot:
            raise PageCorruptError(f"slot {slot} holds page {node.page_id}",
                                   path=path)
        live += 1
        tree.store.write(node)
        tree.store.reserve(node.page_id)
        if slot == header["root_slot"]:
            root = node
    if live != header["num_nodes"]:
        raise PageCorruptError(
            f"superblock claims {header['num_nodes']} nodes, "
            f"file holds {live}", path=path)
    if root is not None:
        tree.adopt(root, header["height"], header["size"])
    return tree


def _decode_slot(codec: NodeCodec, image: bytes, path: str) -> Any:
    """Decode one page image into a :class:`Node`; None if the slot is
    freed (page id -1).

    Leaf bodies go through the leaf codec's block decode into a lazy
    :meth:`Node.leaf_from_arrays`, so a quantized page's keys keep
    their codes and half widths in memory — the k-NN kernels prune with
    admissible cell bounds and treecheck can audit the quantization
    grid.  Inner pages decode through the node codec as before.
    """
    if codec.checksums:
        verify_image(image, path=path)
    page_id, level, count = struct.unpack_from("<qii", image, 0)
    if page_id == -1:
        return None
    if level != 0:
        _, _, raw_entries = codec.decode(image, verify=False, path=path)
        return Node(page_id, level,
                    [IndexEntry(pred, child) for pred, child in raw_entries])
    nbytes = codec.leaf_codec.body_bytes(count)
    if count < 0 or PAGE_HEADER_SIZE + nbytes > len(image):
        raise PageCorruptError(
            f"entry count {count} overflows page (level 0)",
            path=path, page_id=page_id)
    try:
        keys, rids = codec.leaf_codec.decode_block(
            image[PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + nbytes], count)
    except PageCorruptError as exc:
        raise PageCorruptError(str(exc), path=path,
                               page_id=page_id) from None
    return Node.leaf_from_arrays(page_id, keys, rids)
