"""The paper's contribution: customized access methods for Blobworld.

Three R-tree variants whose bounding predicates remove the empty MBR
corner volume that expanding nearest-neighbor query spheres clip
(section 5):

- :class:`~repro.core.amap.AMapExtension` — two minimum-total-volume
  rectangles per predicate (MAP), approximated by sampling random
  bipartitions (aMAP, section 5.1);
- :class:`~repro.core.jbtree.JBExtension` — "Jagged Bites": the MBR plus
  the largest safe bite at every corner (section 5.2);
- :class:`~repro.core.xjb.XJBExtension` — "Top X Jagged Bites": only the
  X largest bites, keeping the predicate small enough to limit tree
  height (section 5.3), plus the automatic X selector the paper lists as
  future work.

:mod:`repro.core.api` is the high-level entry point: build any of the six
access methods over a vector set, run workloads, and produce amdb-style
loss analyses.
"""

from repro.core.amap import AMapExtension, MapPred
from repro.core.jbtree import JBExtension
from repro.core.xjb import XJBExtension, select_x
from repro.core.api import build_index, analyze_workload, compare_methods, EXTENSIONS

__all__ = [
    "AMapExtension",
    "MapPred",
    "JBExtension",
    "XJBExtension",
    "select_x",
    "build_index",
    "analyze_workload",
    "compare_methods",
    "EXTENSIONS",
]
