"""A split heuristic for bitten trees (paper section 8, future work #1).

"Designing and implementing insertion and splitting algorithms for XJB
and JB" — Guttman's quadratic split optimizes MBR volume, but a bitten
predicate profits most when a split leaves a clean *void* between the
two groups: the void becomes carvable bite volume on both sides.  The
gap split cuts at the largest empty interval of any single dimension's
projection (respecting minimum fill), falling back to the quadratic
split when no usable gap exists.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ams.splits import quadratic_split
from repro.geometry import Rect


def gap_split(entries: List, rects: Sequence[Rect],
              min_entries: int) -> Tuple[List, List]:
    """Split at the largest projection gap across all dimensions.

    For each dimension the entry footprints are ordered by center; the
    gap between consecutive footprints (next.lo - prev.hi, clipped at
    zero) is evaluated for every cut position allowed by
    ``min_entries``, and the globally largest gap wins.  Zero best gap
    (everything overlaps everywhere) falls back to Guttman's quadratic
    split.
    """
    n = len(entries)
    if n < 2:
        raise ValueError("cannot split fewer than two entries")
    min_entries = max(1, min(min_entries, n // 2))

    los = np.stack([r.lo for r in rects])
    his = np.stack([r.hi for r in rects])
    centers = (los + his) / 2.0
    dim = los.shape[1]

    best_gap = 0.0
    best: Tuple[np.ndarray, int] = None
    for d in range(dim):
        order = np.argsort(centers[:, d], kind="stable")
        sorted_hi = his[order, d]
        sorted_lo = los[order, d]
        # Gap after position i: the void between the running maximum of
        # upper edges and the next footprint's lower edge.
        running_hi = np.maximum.accumulate(sorted_hi)
        gaps = sorted_lo[1:] - running_hi[:-1]
        for cut in range(min_entries, n - min_entries + 1):
            gap = float(gaps[cut - 1])
            if gap > best_gap:
                best_gap = gap
                best = (order, cut)

    if best is None:
        return quadratic_split(entries, list(rects), min_entries)
    order, cut = best
    return ([entries[i] for i in order[:cut]],
            [entries[i] for i in order[cut:]])
