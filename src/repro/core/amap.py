"""The MAP / aMAP access method (paper section 5.1).

A MAP (Minimum Area Predicate) bounds a node with *two* hyper-rectangles
chosen to minimize the total enclosed volume, counting overlap once.
The idealized MAP examines every bipartition of the bounded items; aMAP
(approximate MAP) samples 1024 random bipartitions and keeps the best —
the construction actually used in the paper's experiments.

Unlike R-tree node-split heuristics, overlap between the two rectangles
is acceptable (they belong to the *same* predicate), so the objective is
total covered volume, not overlap minimization.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import AMAP_SAMPLES
from repro.ams.rtree import RTreeExtension
from repro.geometry import Rect
from repro.geometry.rect import min_dists_to_rects, min_dists_to_rects_multi
from repro.gist.node import Node
from repro.storage.codecs import DualRectCodec


class MapPred:
    """A MAP bounding predicate: the union of two rectangles."""

    __slots__ = ("r1", "r2")

    def __init__(self, r1: Rect, r2: Rect):
        self.r1 = r1
        self.r2 = r2

    def __iter__(self):
        yield self.r1
        yield self.r2

    @property
    def dim(self) -> int:
        return self.r1.dim

    def mbr(self) -> Rect:
        return self.r1.union(self.r2)

    def covered_volume(self) -> float:
        """Total volume, counting the overlapped region once."""
        return (self.r1.volume() + self.r2.volume()
                - self.r1.intersection_volume(self.r2))

    def contains_point(self, p) -> bool:
        return self.r1.contains_point(p) or self.r2.contains_point(p)

    def min_dist(self, q) -> float:
        return min(self.r1.min_dist(q), self.r2.min_dist(q))

    def __repr__(self) -> str:
        return f"MapPred({self.r1!r}, {self.r2!r})"


def best_bipartition(los: np.ndarray, his: np.ndarray, samples: int,
                     rng: np.random.Generator,
                     kernel: str = "orderstat") -> MapPred:
    """Minimum-total-volume pair of MBRs over random bipartitions.

    ``los``/``his`` give each item's own bounds (equal for points).  The
    all-in-one split (second rectangle empty) is always a candidate, so
    aMAP never does worse than the plain MBR on covered volume.

    ``kernel`` selects how the candidates are scored: ``"orderstat"``
    (default) or ``"reduce"``, the straightforward masked min/max
    reduction kept as the bit-identical reference for parity tests and
    legacy build benchmarking.
    """
    n = len(los)
    whole = Rect(los.min(axis=0), his.max(axis=0))
    best = MapPred(whole, whole)
    best_vol = best.covered_volume()
    if n < 2:
        return best

    dim = los.shape[1]
    masks = rng.integers(0, 2, size=(samples, n), dtype=np.int8).astype(bool)
    # Random bipartitions alone essentially never separate coherent
    # groups of more than a few dozen items, so the candidate pool also
    # includes axis-sweep bipartitions (cut the items sorted along each
    # dimension at a few quantiles) — still bipartitions, so still MAP.
    sweeps = []
    centers = (los + his) / 2.0
    for d in range(dim):
        order = np.argsort(centers[:, d], kind="stable")
        for frac in (0.25, 0.5, 0.75):
            cut = int(n * frac)
            if 0 < cut < n:
                mask = np.zeros(n, dtype=bool)
                mask[order[:cut]] = True
                sweeps.append(mask)
    if sweeps:
        masks = np.concatenate([masks, np.stack(sweeps)])
    # Discard degenerate all-true / all-false samples.
    keep = masks.any(axis=1) & (~masks).any(axis=1)
    masks = masks[keep]
    if len(masks) == 0:
        return best

    if kernel == "reduce":
        big = np.inf
        lo1 = np.where(masks[:, :, None], los[None], big).min(axis=1)
        hi1 = np.where(masks[:, :, None], his[None], -big).max(axis=1)
        lo2 = np.where(masks[:, :, None], big, los[None]).min(axis=1)
        hi2 = np.where(masks[:, :, None], -big, his[None]).max(axis=1)
    elif kernel == "orderstat":
        # Every candidate scored at once, as order statistics rather
        # than float reductions: a side's bound in dimension d is the
        # *first* of its items in d-sorted order, so after one argsort
        # per dimension each of the (candidates x dim) bounds is a
        # boolean argmax plus a gather — no per-candidate Python loop
        # and no (candidates x items x dim) float temporaries.  Picks
        # elements, never computes, so the result is bit-identical to
        # the masked reduction above.
        C = len(masks)
        lo1 = np.empty((C, dim))
        hi1 = np.empty((C, dim))
        lo2 = np.empty((C, dim))
        hi2 = np.empty((C, dim))
        for d in range(dim):
            asc = np.argsort(los[:, d], kind="stable")
            desc = np.argsort(-his[:, d], kind="stable")
            lo_vals, hi_vals = los[asc, d], his[desc, d]
            m_asc, m_desc = masks[:, asc], masks[:, desc]
            lo1[:, d] = lo_vals[m_asc.argmax(axis=1)]
            lo2[:, d] = lo_vals[(~m_asc).argmax(axis=1)]
            hi1[:, d] = hi_vals[m_desc.argmax(axis=1)]
            hi2[:, d] = hi_vals[(~m_desc).argmax(axis=1)]
    else:
        raise ValueError(f"unknown bipartition kernel {kernel!r}; "
                         "choose 'orderstat' or 'reduce'")

    vol1 = np.prod(hi1 - lo1, axis=1)
    vol2 = np.prod(hi2 - lo2, axis=1)
    inter = np.clip(np.minimum(hi1, hi2) - np.maximum(lo1, lo2), 0.0, None)
    total = vol1 + vol2 - np.prod(inter, axis=1)

    i = int(np.argmin(total))
    if total[i] < best_vol:
        best = MapPred(Rect(lo1[i], hi1[i]), Rect(lo2[i], hi2[i]))
    return best


class AMapExtension(RTreeExtension):
    """aMAP: R-tree chassis with dual-rectangle bounding predicates.

    Routing (penalty, split) treats the predicate as its overall MBR; the
    dual rectangles only sharpen ``consistent`` and the NN distance.
    """

    name = "amap"

    def __init__(self, dim: int, samples: int = AMAP_SAMPLES,
                 seed: int = 0, bp_kernel: str = "orderstat"):
        super().__init__(dim)
        self.samples = samples
        self.seed = seed
        #: candidate-scoring kernel (a speed knob only: both kernels
        #: produce bit-identical predicates, so it is not persisted).
        self.bp_kernel = bp_kernel
        self._rng = np.random.default_rng(seed)

    # -- predicate construction --------------------------------------------

    def pred_for_keys(self, keys: np.ndarray) -> MapPred:
        keys = np.asarray(keys, dtype=np.float64)
        return best_bipartition(keys, keys, self.samples, self._rng,
                                kernel=self.bp_kernel)

    def pred_for_preds(self, preds: Sequence[MapPred]) -> MapPred:
        rects = self.footprints(preds)
        los = np.stack([r.lo for r in rects])
        his = np.stack([r.hi for r in rects])
        return best_bipartition(los, his, self.samples, self._rng,
                                kernel=self.bp_kernel)

    # -- bulk-load construction hooks ---------------------------------------
    #
    # Bulk builds key the sampling RNG to the node's (level, index)
    # position instead of the shared insert-path stream, so the predicate
    # of any given node is independent of which worker builds it (and of
    # how many workers there are) — the property the parallel loader's
    # byte-identity guarantee rests on.

    def _bulk_rng(self, token: Tuple[int, int]) -> np.random.Generator:
        level, index = token
        return np.random.default_rng((self.seed, level, index))

    def pred_for_keys_at(self, keys: np.ndarray,
                         token: Tuple[int, int]) -> MapPred:
        keys = np.asarray(keys, dtype=np.float64)
        return best_bipartition(keys, keys, self.samples,
                                self._bulk_rng(token),
                                kernel=self.bp_kernel)

    def pred_for_preds_at(self, preds: Sequence[MapPred],
                          token: Tuple[int, int]) -> MapPred:
        rects = self.footprints(preds)
        los = np.stack([r.lo for r in rects])
        his = np.stack([r.hi for r in rects])
        return best_bipartition(los, his, self.samples,
                                self._bulk_rng(token),
                                kernel=self.bp_kernel)

    def pred_for_node_at(self, node: Node, token: Tuple[int, int]) -> MapPred:
        if node.is_leaf:
            return self.pred_for_keys_at(node.keys_array(), token)
        # node_bounds stacks the child MBRs exactly as pred_for_preds
        # does, but memoized under "rect_bounds" so the first queries
        # inherit the matrices built here.
        los, his = self.node_bounds(node)
        return best_bipartition(los, his, self.samples,
                                self._bulk_rng(token),
                                kernel=self.bp_kernel)

    def footprints(self, preds: Sequence[MapPred]) -> List[Rect]:
        return [p.mbr() for p in preds]

    def footprint(self, pred: MapPred) -> Rect:
        return pred.mbr()

    # -- algebra ---------------------------------------------------------------

    def consistent(self, pred: MapPred, query_rect) -> bool:
        return (pred.r1.intersects(query_rect)
                or pred.r2.intersects(query_rect))

    def contains(self, pred: MapPred, point) -> bool:
        return pred.contains_point(point)

    def covers_pred(self, parent_pred: MapPred, child_pred: MapPred) -> bool:
        child = self.footprint(child_pred)
        return (parent_pred.r1.contains_rect(child)
                or parent_pred.r2.contains_rect(child))

    # -- incremental adjust ----------------------------------------------------
    #
    # Online inserts widen whichever of the two rectangles grows by the
    # smaller volume — a greedy stand-in for re-running the bipartition
    # sampler, which would reshuffle the shared RNG stream and cost a
    # thousand candidate evaluations per touched ancestor.  Both rects
    # only ever grow, so everything the old predicate admitted stays
    # admitted.

    def _grown(self, pred: MapPred, g1: Rect, g2: Rect) -> MapPred:
        cost1 = g1.volume() - pred.r1.volume()
        cost2 = g2.volume() - pred.r2.volume()
        if cost1 <= cost2:
            return MapPred(g1, pred.r2)
        return MapPred(pred.r1, g2)

    def adjust_pred_insert(self, pred: MapPred, key: np.ndarray):
        if pred.contains_point(key):
            return pred
        return self._grown(pred, pred.r1.union_point(key),
                           pred.r2.union_point(key))

    def adjust_pred_cover(self, pred: MapPred, child_pred: MapPred):
        if self.covers_pred(pred, child_pred):
            return pred
        child = self.footprint(child_pred)
        return self._grown(pred, pred.r1.union(child),
                           pred.r2.union(child))

    # -- distances ---------------------------------------------------------------

    def min_dist(self, pred: MapPred, q: np.ndarray) -> float:
        return pred.min_dist(q)

    def _dual_bounds(self, node: Node):
        def build():
            preds = node.preds()
            return (np.stack([p.r1.lo for p in preds]),
                    np.stack([p.r1.hi for p in preds]),
                    np.stack([p.r2.lo for p in preds]),
                    np.stack([p.r2.hi for p in preds]))
        return node.cached("amap_bounds", build)

    def min_dists_node(self, node: Node, q: np.ndarray) -> np.ndarray:
        lo1, hi1, lo2, hi2 = self._dual_bounds(node)
        return np.minimum(min_dists_to_rects(q, lo1, hi1),
                          min_dists_to_rects(q, lo2, hi2))

    def min_dists_node_multi(self, node: Node,
                             queries: np.ndarray) -> np.ndarray:
        lo1, hi1, lo2, hi2 = self._dual_bounds(node)
        return np.minimum(min_dists_to_rects_multi(queries, lo1, hi1),
                          min_dists_to_rects_multi(queries, lo2, hi2))

    # -- storage --------------------------------------------------------------------

    def pred_codec(self) -> "_MapPredCodec":
        return _MapPredCodec(self.dim)

    def config(self) -> dict:
        return {"samples": self.samples, "seed": self.seed}


class _MapPredCodec(DualRectCodec):
    """DualRectCodec that decodes into :class:`MapPred` objects."""

    def decode(self, data: bytes) -> MapPred:
        r1, r2 = super().decode(data)
        return MapPred(r1, r2)
