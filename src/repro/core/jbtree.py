"""The JB ("Jagged Bites") access method (paper section 5.2).

A JB predicate is an MBR plus the largest safe rectangular bite at
*every* corner, constructed with the nibbling heuristic of the paper's
Figure 13 (:func:`repro.geometry.bites.carve_bites`).  With ``2**D``
corners the predicate costs ``(2 + 2**D) * D`` numbers (Table 3), which
at D=5 is 8.5x the MBR — the price that pushed the paper's JB tree from
height 3 to height 6 while driving leaf-level excess coverage to nearly
zero.

Distances are two-tier: the plain MBR distance is the cheap enqueue
bound and the bite-aware distance the lazy refinement (see
:mod:`repro.gist.nn`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ams.rtree import RTreeExtension
from repro.geometry import BittenRect, Rect
from repro.geometry.bites import DEFAULT_MAX_STEPS
from repro.storage.codecs import JBCodec


class JBExtension(RTreeExtension):
    """R-tree chassis with full Jagged-Bites bounding predicates."""

    name = "jb"

    #: bites kept per predicate; None keeps every corner's bite (JB).
    max_bites: Optional[int] = None

    has_refinement = True

    def __init__(self, dim: int, max_steps: int = DEFAULT_MAX_STEPS,
                 bite_method: str = "sweep", split_method: str = "gap"):
        """``bite_method``: ``"sweep"`` (the improved construction the
        paper's footnote 7 reserves for its final version, the default),
        ``"nibble"`` (the Figure 13 heuristic exactly), ``"both"``, or
        ``"probe"`` (the section-8 workload-oriented construction).

        ``split_method``: ``"gap"`` (the bite-friendly largest-void
        split of :mod:`repro.core.jb_split`, future work #1) or
        ``"quadratic"`` (inherit the R-tree split)."""
        super().__init__(dim)
        self.max_steps = max_steps
        self.bite_method = bite_method
        if split_method not in ("gap", "quadratic"):
            raise ValueError(f"unknown split method {split_method!r}")
        self.split_method = split_method

    # -- predicate construction --------------------------------------------

    def pred_for_keys(self, keys: np.ndarray) -> BittenRect:
        return BittenRect.from_points(keys, max_bites=self.max_bites,
                                      max_steps=self.max_steps,
                                      method=self.bite_method)

    def pred_for_preds(self, preds: Sequence[BittenRect]) -> BittenRect:
        return BittenRect.from_rects(self.footprints(preds),
                                     max_bites=self.max_bites,
                                     max_steps=self.max_steps,
                                     method=self.bite_method)

    def footprints(self, preds: Sequence[BittenRect]) -> List[Rect]:
        return [p.rect for p in preds]

    def footprint(self, pred: BittenRect) -> Rect:
        return pred.rect

    # -- algebra ---------------------------------------------------------------

    def consistent(self, pred: BittenRect, query_rect) -> bool:
        inter = pred.rect.intersection(query_rect)
        if inter is None:
            return False
        # If one bite swallows the whole intersection box, the query
        # cannot reach covered data through this predicate.
        return not any(_swallows(b, inter) for b in pred.bites)

    def contains(self, pred: BittenRect, point) -> bool:
        return pred.contains_point(point)

    def covers_pred(self, parent_pred: BittenRect,
                    child_pred: BittenRect) -> bool:
        return parent_pred.contains_rect(self.footprint(child_pred))

    def pick_split(self, entries, level: int, min_entries: int):
        if self.split_method == "quadratic":
            return super().pick_split(entries, level, min_entries)
        from repro.ams.rtree import entry_rect
        from repro.core.jb_split import gap_split
        leaf = level == 0
        rects = [entry_rect(e, leaf, self.footprint) for e in entries]
        return gap_split(entries, rects, min_entries)

    # -- distances ---------------------------------------------------------------

    def min_dist(self, pred: BittenRect, q: np.ndarray) -> float:
        return pred.min_dist(q)

    # min_dists_node is inherited from RTreeExtension: it uses the cached
    # MBR bounds as the cheap lower bound; refine_dist tightens lazily.

    def refine_dist(self, pred: BittenRect, q: np.ndarray,
                    lower_bound: float) -> float:
        return max(lower_bound, pred.min_dist(q))

    # -- storage --------------------------------------------------------------------

    def pred_codec(self) -> JBCodec:
        return JBCodec(self.dim)

    def config(self) -> dict:
        return {"max_steps": self.max_steps,
                "bite_method": self.bite_method,
                "split_method": self.split_method}


def _swallows(bite, rect: Rect) -> bool:
    """Is the closed box ``rect`` entirely inside the half-open bite?"""
    low_ok = (rect.lo >= bite.lo) & (rect.hi < bite.hi)
    high_ok = (rect.lo > bite.lo) & (rect.hi <= bite.hi)
    return bool(np.all(np.where(bite.low_side, low_ok, high_ok)))
