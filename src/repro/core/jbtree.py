"""The JB ("Jagged Bites") access method (paper section 5.2).

A JB predicate is an MBR plus the largest safe rectangular bite at
*every* corner, constructed with the nibbling heuristic of the paper's
Figure 13 (:func:`repro.geometry.bites.carve_bites`).  With ``2**D``
corners the predicate costs ``(2 + 2**D) * D`` numbers (Table 3), which
at D=5 is 8.5x the MBR — the price that pushed the paper's JB tree from
height 3 to height 6 while driving leaf-level excess coverage to nearly
zero.

Distances are two-tier: the plain MBR distance is the cheap enqueue
bound and the bite-aware distance the lazy refinement (see
:mod:`repro.gist.nn`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ams.rtree import RTreeExtension
from repro.geometry import BittenRect, Rect
from repro.geometry.bites import DEFAULT_MAX_STEPS
from repro.gist.node import Node
from repro.storage.codecs import JBCodec


class JBExtension(RTreeExtension):
    """R-tree chassis with full Jagged-Bites bounding predicates."""

    name = "jb"

    #: bites kept per predicate; None keeps every corner's bite (JB).
    max_bites: Optional[int] = None

    has_refinement = True

    def __init__(self, dim: int, max_steps: int = DEFAULT_MAX_STEPS,
                 bite_method: str = "sweep", split_method: str = "gap"):
        """``bite_method``: ``"sweep"`` (the improved construction the
        paper's footnote 7 reserves for its final version, the default),
        ``"nibble"`` (the Figure 13 heuristic exactly), ``"both"``, or
        ``"probe"`` (the section-8 workload-oriented construction).

        ``split_method``: ``"gap"`` (the bite-friendly largest-void
        split of :mod:`repro.core.jb_split`, future work #1) or
        ``"quadratic"`` (inherit the R-tree split)."""
        super().__init__(dim)
        self.max_steps = max_steps
        self.bite_method = bite_method
        if split_method not in ("gap", "quadratic"):
            raise ValueError(f"unknown split method {split_method!r}")
        self.split_method = split_method

    # -- predicate construction --------------------------------------------

    def pred_for_keys(self, keys: np.ndarray) -> BittenRect:
        return BittenRect.from_points(keys, max_bites=self.max_bites,
                                      max_steps=self.max_steps,
                                      method=self.bite_method)

    def pred_for_preds(self, preds: Sequence[BittenRect]) -> BittenRect:
        return BittenRect.from_rects(self.footprints(preds),
                                     max_bites=self.max_bites,
                                     max_steps=self.max_steps,
                                     method=self.bite_method)

    # -- bulk-load construction hooks ---------------------------------------

    def pred_for_node_at(self, node: Node, token) -> BittenRect:
        if node.is_leaf:
            return self.pred_for_keys_at(node.keys_array(), token)
        # Carve straight off the node's memoized child-bounds matrices:
        # no Rect re-stacking, and the cache feeds the first queries.
        los, his = self.node_bounds(node)
        return BittenRect.from_rect_bounds(los, his,
                                           max_bites=self.max_bites,
                                           max_steps=self.max_steps,
                                           method=self.bite_method)

    def preds_for_nodes(self, nodes: Sequence[Node], tokens) -> List:
        """Carve whole sibling groups in one sweep kernel.

        Nodes with equal entry counts batch into a single
        ``(G, n, dim)`` carve; predicates depend only on each node's own
        contents, so any sharding of the node list (the parallel bulk
        loader's, or this grouping) yields bit-identical results.
        """
        from repro.geometry.bites import bitten_rects_multi
        preds: List = [None] * len(nodes)
        groups: dict = {}
        for i, node in enumerate(nodes):
            groups.setdefault((node.is_leaf, len(node.entries)),
                              []).append(i)
        for (leaf, _count), idxs in groups.items():
            if leaf:
                data = {"points": np.stack(
                    [nodes[i].keys_array() for i in idxs])}
            else:
                bounds = [self.node_bounds(nodes[i]) for i in idxs]
                data = {"rect_los": np.stack([b[0] for b in bounds]),
                        "rect_his": np.stack([b[1] for b in bounds])}
            built = bitten_rects_multi(max_bites=self.max_bites,
                                       max_steps=self.max_steps,
                                       method=self.bite_method, **data)
            for i, pred in zip(idxs, built):
                preds[i] = pred
        return preds

    def footprints(self, preds: Sequence[BittenRect]) -> List[Rect]:
        return [p.rect for p in preds]

    def footprint(self, pred: BittenRect) -> Rect:
        return pred.rect

    # -- algebra ---------------------------------------------------------------

    def consistent(self, pred: BittenRect, query_rect) -> bool:
        inter = pred.rect.intersection(query_rect)
        if inter is None:
            return False
        # If one bite swallows the whole intersection box, the query
        # cannot reach covered data through this predicate.
        return not any(_swallows(b, inter) for b in pred.bites)

    def contains(self, pred: BittenRect, point) -> bool:
        return pred.contains_point(point)

    def covers_pred(self, parent_pred: BittenRect,
                    child_pred: BittenRect) -> bool:
        return parent_pred.contains_rect(self.footprint(child_pred))

    # -- incremental adjust ----------------------------------------------------
    #
    # Online inserts widen the MBR and *invalidate* bites rather than
    # re-carving: a bite survives only if its anchoring MBR corner did
    # not move (the codec re-anchors bites to the stored rect's corners
    # on decode, so a moved corner would silently translate the bite)
    # and it still avoids the new key / child rect.  Dropping bites only
    # grows the covered region, so the widened predicate admits
    # everything the old one did — and XJB's bite budget is trivially
    # respected.  Bites are re-carved from scratch only when the node
    # splits (a full recompute).

    def _surviving_bites(self, pred: BittenRect, rect: Rect):
        old = pred.rect
        return [b for b in pred.bites
                if np.array_equal(rect.corner(b.corner_mask),
                                  old.corner(b.corner_mask))]

    def adjust_pred_insert(self, pred: BittenRect, key: np.ndarray):
        if pred.contains_point(key):
            return pred
        rect = pred.rect.union_point(key)
        bites = [b for b in self._surviving_bites(pred, rect)
                 if not b.removes_point(key)]
        return BittenRect(rect, bites)

    def adjust_pred_cover(self, pred: BittenRect, child_pred: BittenRect):
        child = self.footprint(child_pred)
        if pred.contains_rect(child):
            return pred
        rect = pred.rect.union(child)
        bites = [b for b in self._surviving_bites(pred, rect)
                 if not b.blocks_rect(child.lo, child.hi)]
        return BittenRect(rect, bites)

    def pick_split(self, entries, level: int, min_entries: int):
        if self.split_method == "quadratic":
            return super().pick_split(entries, level, min_entries)
        from repro.ams.rtree import entry_rect
        from repro.core.jb_split import gap_split
        leaf = level == 0
        rects = [entry_rect(e, leaf, self.footprint) for e in entries]
        return gap_split(entries, rects, min_entries)

    # -- distances ---------------------------------------------------------------

    def min_dist(self, pred: BittenRect, q: np.ndarray) -> float:
        return pred.min_dist(q)

    # min_dists_node is inherited from RTreeExtension: it uses the cached
    # MBR bounds as the cheap lower bound; refine_dist tightens lazily.

    def refine_dist(self, pred: BittenRect, q: np.ndarray,
                    lower_bound: float) -> float:
        return max(lower_bound, pred.min_dist(q))

    def bite_pack(self, node: Node):
        """All entries' bites stacked flat, memoized on the node.

        Returns ``(blo, bhi, blow, counts, offsets)``: ``(T, dim)`` bite
        bounds / side flags for the ``T`` bites across the node, with
        entry ``i`` owning the slice ``offsets[i]:offsets[i+1]``.
        """
        def build():
            preds = node.preds()
            counts = np.array([len(p.bites) for p in preds],
                              dtype=np.intp)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            if offsets[-1] == 0:
                empty = np.empty((0, self.dim))
                return (empty, empty,
                        np.empty((0, self.dim), dtype=bool),
                        counts, offsets)
            blo = np.stack([b.lo for p in preds for b in p.bites])
            bhi = np.stack([b.hi for p in preds for b in p.bites])
            blow = np.stack([b.low_side for p in preds for b in p.bites])
            return blo, bhi, blow, counts, offsets
        return node.cached("jb_bites", build)

    def refine_dists_node(self, node: Node, queries: np.ndarray,
                          dists: np.ndarray) -> np.ndarray:
        """Vectorized bite-aware refinement screen for a query block.

        :meth:`BittenRect.min_dist`'s box search terminates on its very
        first pop — returning the plain MBR box distance — whenever the
        query's clamp point onto the MBR lies outside every bite.  That
        dominant case is decided here for all ``queries × entries`` at
        once; the refined bound is then ``max(cheap, box)`` exactly as
        the scalar path computes it (same ``(delta*delta).sum`` kernel,
        so bit-identical).  Cells where the clamp lands inside a bite,
        and entries with no bites (whose scalar path takes a different
        float route through ``np.linalg.norm``), stay NaN for lazy
        per-pair :meth:`refine_dist` fallback.
        """
        blo, bhi, blow, counts, offsets = self.bite_pack(node)
        out = np.full(dists.shape, np.nan)
        nz = np.nonzero(counts)[0]
        if len(nz) == 0:
            return out
        lo, hi = self.node_bounds(node)
        q = queries[:, None, :]
        delta = np.maximum(np.maximum(lo - q, q - hi), 0.0)
        box = np.sqrt((delta * delta).sum(axis=-1))
        ent = np.repeat(np.arange(len(counts)), counts)
        p = np.clip(q, lo, hi)[:, ent, :]
        inside = np.all(np.where(blow, (p >= blo) & (p < bhi),
                                 (p > blo) & (p <= bhi)), axis=-1)
        # offsets[nz] is strictly increasing (zero-count entries add
        # nothing to the cumsum), so each reduceat segment is exactly
        # one bitten entry's slice.
        clear = ~np.logical_or.reduceat(inside, offsets[nz], axis=1)
        mask = np.zeros(dists.shape, dtype=bool)
        mask[:, nz] = clear
        out[mask] = np.maximum(dists, box)[mask]
        return out

    # -- storage --------------------------------------------------------------------

    def pred_codec(self) -> JBCodec:
        return JBCodec(self.dim)

    def config(self) -> dict:
        return {"max_steps": self.max_steps,
                "bite_method": self.bite_method,
                "split_method": self.split_method}


def _swallows(bite, rect: Rect) -> bool:
    """Is the closed box ``rect`` entirely inside the half-open bite?"""
    low_ok = (rect.lo >= bite.lo) & (rect.hi < bite.hi)
    high_ok = (rect.lo > bite.lo) & (rect.hi <= bite.hi)
    return bool(np.all(np.where(bite.low_side, low_ok, high_ok)))
