"""High-level API: build, query, and analyze customized access methods.

The paper's workflow (Figure 5) is: load blob descriptors into candidate
access methods, replay a nearest-neighbor workload under amdb, study the
losses, and iterate on the bounding predicate design.  This module packs
that loop into three calls::

    tree = build_index(vectors, method="xjb")
    report = analyze_workload(tree, vectors, queries, k=200)
    reports = compare_methods(vectors, queries, methods=["rtree", "xjb"])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_PAGE_SIZE, TARGET_UTILIZATION, XJB_DEFAULT_X
from repro.ams import (RStarTreeExtension, RTreeExtension,
                       SRTreeExtension, SSTreeExtension)
from repro.amdb import compute_losses, optimal_clustering, profile_workload
from repro.amdb.metrics import LossReport
from repro.amdb.partition import Clustering
from repro.bulk import bulk_load, insertion_load
from repro.core.amap import AMapExtension
from repro.core.jbtree import JBExtension
from repro.core.xjb import XJBExtension, select_x
from repro.gist import GiST

#: access method registry: name -> extension factory(dim, **options)
EXTENSIONS = {
    "rtree": RTreeExtension,
    "rstar": RStarTreeExtension,
    "sstree": SSTreeExtension,
    "srtree": SRTreeExtension,
    "amap": AMapExtension,
    "jb": JBExtension,
    "xjb": XJBExtension,
}


def make_extension(method: str, dim: int, **options):
    """Instantiate an access method extension by registry name."""
    try:
        factory = EXTENSIONS[method]
    except KeyError:
        raise ValueError(
            f"unknown access method {method!r}; "
            f"choose one of {sorted(EXTENSIONS)}") from None
    if method == "xjb" and options.get("x") == "auto":
        options = dict(options)
        options["x"] = None  # resolved by build_index, which knows n
    return factory(dim, **options)


def build_index(vectors: np.ndarray, method: str = "xjb",
                page_size: int = DEFAULT_PAGE_SIZE,
                loading: str = "bulk", rids: Optional[Sequence[int]] = None,
                codec: str = "f64", **options) -> GiST:
    """Build an index of the given ``method`` over ``vectors``.

    ``loading`` is ``"bulk"`` (STR, the paper's configuration) or
    ``"insert"`` (one INSERT per key, Table 2's contrast).  For XJB,
    pass ``x="auto"`` to let :func:`repro.core.xjb.select_x` pick the
    paper's "largest X that costs at most one level".  ``codec``
    selects the leaf-page format: ``"f64"`` (exact) or ``"sq8"``
    (8-bit scalar quantization; exact answers are restored by the
    full-descriptor rerank in :mod:`repro.blobworld.query`).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be a 2-D (n, dim) array")
    dim = vectors.shape[1]

    if method == "xjb" and options.get("x") == "auto":
        options = dict(options)
        options["x"] = select_x(len(vectors), dim, page_size)
    ext = make_extension(method, dim, **options)
    from repro.storage.codecs import make_leaf_codec
    leaf_codec = make_leaf_codec(codec, dim)

    if loading == "bulk":
        return bulk_load(ext, vectors, rids=rids, page_size=page_size,
                         leaf_codec=leaf_codec)
    if loading == "insert":
        tree = insertion_load(ext, vectors, rids=rids, page_size=page_size,
                              leaf_codec=leaf_codec)
        return tree
    raise ValueError(f"unknown loading mode {loading!r}")


def analyze_workload(tree: GiST, vectors: np.ndarray,
                     queries: Sequence[np.ndarray], k: int,
                     rids: Optional[Sequence[int]] = None,
                     clustering: Optional[Clustering] = None,
                     target_utilization: float = TARGET_UTILIZATION) -> LossReport:
    """Profile a k-NN workload and compute amdb losses for ``tree``."""
    if rids is None:
        rids = list(range(len(vectors)))
    profile = profile_workload(tree, queries, k)
    return compute_losses(profile, keys=vectors, rids=list(rids),
                          clustering=clustering,
                          target_utilization=target_utilization)


def compare_methods(vectors: np.ndarray, queries: Sequence[np.ndarray],
                    k: int, methods: Sequence[str] = ("rtree", "xjb"),
                    page_size: int = DEFAULT_PAGE_SIZE,
                    loading: str = "bulk",
                    target_utilization: float = TARGET_UTILIZATION,
                    method_options: Optional[Dict[str, dict]] = None
                    ) -> Dict[str, LossReport]:
    """Build each method over the same data, analyze the same workload.

    The optimal clustering is computed once, from the first tree's leaf
    capacity, and shared across methods — the clustering baseline depends
    only on data, workload, and page capacity, not on the AM.
    """
    method_options = method_options or {}
    vectors = np.asarray(vectors, dtype=np.float64)
    rids = list(range(len(vectors)))

    reports: Dict[str, LossReport] = {}
    shared_clustering: Optional[Clustering] = None
    for method in methods:
        tree = build_index(vectors, method, page_size=page_size,
                           loading=loading,
                           **method_options.get(method, {}))
        profile = profile_workload(tree, queries, k)
        if shared_clustering is None:
            block_capacity = max(1, int(target_utilization
                                        * tree.leaf_capacity))
            shared_clustering = optimal_clustering(
                vectors, rids, [t.result_rids for t in profile.traces],
                block_capacity)
        reports[method] = compute_losses(
            profile, clustering=shared_clustering,
            target_utilization=target_utilization)
    return reports
