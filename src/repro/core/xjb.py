"""The XJB ("Top X Jagged Bites") access method (paper section 5.3).

XJB stores only the ``X`` largest-volume bites, costing
``2*D + (D+1)*X`` numbers per predicate (Table 3).  The paper sets
``X = 10`` for its 5-D data — "as large as possible without causing the
index to add another level" beyond one — and lists automatic selection
of X as future work; :func:`select_x` implements that selector from the
fanout arithmetic.
"""

from __future__ import annotations

import math

from repro.constants import NUMBER_SIZE, XJB_DEFAULT_X
from repro.core.jbtree import JBExtension
from repro.geometry.bites import DEFAULT_MAX_STEPS
from repro.storage.codecs import XJBCodec
from repro.storage.page import entries_per_page


class XJBExtension(JBExtension):
    """JB behaviour limited to the top ``x`` bites per predicate."""

    name = "xjb"

    def __init__(self, dim: int, x: int = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 bite_method: str = "sweep", split_method: str = "gap"):
        if x is None:
            # The paper's X=10, clamped to the corner count of low dims.
            x = min(XJB_DEFAULT_X, 1 << dim)
        super().__init__(dim, max_steps=max_steps,
                         bite_method=bite_method,
                         split_method=split_method)
        if not 0 <= x <= (1 << dim):
            raise ValueError(f"x={x} out of range for dim={dim}")
        self.x = x
        self.max_bites = x

    def pred_codec(self) -> XJBCodec:
        return XJBCodec(self.dim, self.x)

    def config(self) -> dict:
        return {"x": self.x, "max_steps": self.max_steps,
                "bite_method": self.bite_method,
                "split_method": self.split_method}


def _index_height(num_leaves: int, fanout: int) -> int:
    """Levels of a packed tree with ``num_leaves`` leaves."""
    height = 1
    nodes = num_leaves
    while nodes > 1:
        nodes = math.ceil(nodes / fanout)
        height += 1
    return height


def select_x(num_items: int, dim: int, page_size: int,
             max_extra_levels: int = 1) -> int:
    """Choose the largest ``X`` whose tree grows at most
    ``max_extra_levels`` beyond the plain R-tree's height.

    This automates the paper's manual choice (future work, section 8):
    "X should be set to be as large as possible without causing the
    index to add another level."
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    leaf_entry = dim * NUMBER_SIZE + NUMBER_SIZE
    leaves = math.ceil(num_items / entries_per_page(page_size, leaf_entry))

    rect_entry = 2 * dim * NUMBER_SIZE + NUMBER_SIZE
    base_height = _index_height(leaves,
                                entries_per_page(page_size, rect_entry))

    best = 0
    for x in range(0, (1 << dim) + 1):
        entry = rect_entry + (dim + 1) * x * NUMBER_SIZE
        try:
            fanout = entries_per_page(page_size, entry)
        except ValueError:
            break
        if _index_height(leaves, fanout) <= base_height + max_extra_levels:
            best = x
        else:
            break
    return best
